"""Fused whole-hierarchy sweeps: decode and replay a trace once per campaign.

The paper's headline figures are sweeps — L3 capacity 4 MiB → 2 GiB
(Figure 6), associativity 1 → full (Figure 7), L4 sizes (Figures 12–14) —
and a per-point replay spends the vectorized kernels' speedup N times
over: every sweep point re-filters the trace through L1-I/L1-D/L2 even
though only the last level changed.  This module fuses the campaign:

* **Shared upstream passes.**  Configurations are grouped by their
  (L1-I, L1-D, L2) geometries; each group replays the trace through the
  upstream levels exactly once — the same warm-state handoff as a
  per-point run, each level's miss stream feeding the next — and every
  configuration in the group receives its own copy of the shared
  :class:`~repro.cachesim.results.LevelStats`.
* **One-pass Mattson ladders.**  Within a group, last-level
  configurations that share ``(block_size, num_sets)`` form an
  associativity ladder: per-set LRU stack inclusion holds, so one
  stack-distance pass over the (already filtered) last-level stream
  yields every ladder entry's hit mask
  (:func:`repro.cachesim.fastsim.fast_lru_hits_ladder`).  Capacity
  ladders vary ``num_sets``, which breaks inclusion (lines migrate
  between sets) — those points fall back to one kernel call each, still
  sharing the upstream passes.
* **Set-sharded parallel replay.**  LRU sets are independent, so a
  replay partitions by ``set % jobs`` and fans out over a spawned
  process pool; hit masks scatter back bit-identically and worker kernel
  counters merge into the parent via the sanctioned worker-delta pattern
  (:func:`repro.cachesim.fastsim.merge_counter_deltas`).

The TLB sits beside the cache sweep rather than inside it: translations
depend only on the trace and the page size, never on cache geometry, so
one :func:`repro.cpu.tlb.simulate_tlb` pass (itself vectorized behind
``engine="fast"``) covers a whole campaign.  The L4 likewise consumes
the swept L3's miss stream (:meth:`~repro.cachesim.composed.\
ComposedHierarchy.l4_demand` with memoized L3 solves) through the
already-vectorized direct-mapped kernel.  Prefetchers and inclusive
hierarchies remain exact-engine territory: ``engine="auto"`` falls back
to per-point reference simulation for them, ``engine="fast"`` raises.

Everything here is bit-identical to per-point replay — enforced by the
Hypothesis differential suite (``tests/cachesim/test_fused.py``) and the
fig6/fig7/fig12 golden byte-equality tests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np

from repro.cachesim import fastsim
from repro.cachesim.fastsim import (
    fast_lru_hits,
    fast_lru_hits_for_sets,
    fast_lru_hits_ladder,
)
from repro.cachesim.hierarchy import (
    HierarchyConfig,
    _fast_level_pass,
    simulate_hierarchy,
)
from repro.cachesim.indexing import lines_of_addrs, set_indices, shard_of_sets
from repro.cachesim.results import HierarchyResult, LevelStats
from repro.errors import ConfigurationError, SimulationError
from repro.memtrace.trace import AccessKind, Trace

#: Below this many accesses a sharded replay runs in-process: pool spawn
#: costs more than the kernel saves.
MIN_SHARDED_ACCESSES = 200_000  # repro: noqa RPR001 -- access count, not a size


# ----------------------------------------------------------------------
# Set-sharded parallel replay
# ----------------------------------------------------------------------


def _shard_worker(
    lines: np.ndarray, sets: np.ndarray, ways: int
) -> tuple[np.ndarray, dict[str, float]]:
    """Replay one set shard; return its hit mask and the counter delta.

    Runs in a spawned pool worker.  The counters are snapshotted around
    the kernel call (workers are reused across shards) and the delta is
    shipped back for the parent to fold in via
    :func:`repro.cachesim.fastsim.merge_counter_deltas`.
    """
    before = fastsim.counters_snapshot()
    hits = fast_lru_hits_for_sets(lines, sets, ways)
    after = fastsim.counters_snapshot()
    delta = {key: after[key] - before[key] for key in before}
    return hits, delta


def sharded_lru_hits_for_sets(
    lines: np.ndarray, sets: np.ndarray, ways: int, jobs: int = 1
) -> np.ndarray:
    """Cold-start LRU hit mask, replayed in parallel over set shards.

    Accesses are partitioned by ``set % jobs`` — every set's subsequence
    lands intact in exactly one shard, and sets never interact under LRU,
    so scattering the per-shard masks back reproduces
    :func:`~repro.cachesim.fastsim.fast_lru_hits_for_sets` bit for bit.
    Workers are spawned (never forked) processes, matching the parallel
    experiment runner; their kernel-counter deltas merge into this
    process so telemetry totals match a serial replay.  Streams below
    :data:`MIN_SHARDED_ACCESSES` run in-process regardless of ``jobs``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if len(lines) != len(sets):
        raise ConfigurationError(
            f"lines and sets must align: {len(lines)} vs {len(sets)}"
        )
    if jobs == 1 or len(lines) < MIN_SHARDED_ACCESSES:
        return fast_lru_hits_for_sets(lines, sets, ways)
    lines64 = np.asarray(lines).astype(np.int64, copy=False)
    sets64 = np.asarray(sets).astype(np.int64, copy=False)
    shard = shard_of_sets(sets64, jobs)
    hits = np.empty(len(lines64), bool)
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=get_context("spawn")
    ) as pool:
        masks = []
        futures = []
        for s in range(jobs):
            mask = shard == s
            if not mask.any():
                continue
            masks.append(mask)
            futures.append(
                pool.submit(_shard_worker, lines64[mask], sets64[mask], ways)
            )
        for mask, future in zip(masks, futures):
            shard_hits, delta = future.result()
            hits[mask] = shard_hits
            fastsim.merge_counter_deltas(delta)
    return hits


def sharded_lru_hits(
    lines: np.ndarray, num_sets: int, ways: int, jobs: int = 1
) -> np.ndarray:
    """Set-sharded counterpart of :func:`~repro.cachesim.fastsim.fast_lru_hits`.

    Derives each line's set (``line % num_sets``) and dispatches to
    :func:`sharded_lru_hits_for_sets`; with ``jobs=1`` (or a small
    stream) this is exactly a serial kernel call.  Composes with the
    experiment runner's ``--jobs``: the runner parallelizes across
    experiments, this across the sets of one replay — disjoint axes.
    """
    if num_sets <= 0 or ways <= 0:
        raise ConfigurationError(
            f"num_sets and ways must be positive: {num_sets}, {ways}"
        )
    if jobs == 1 or len(lines) < MIN_SHARDED_ACCESSES:
        return fast_lru_hits(lines, num_sets, ways)
    lines64 = np.asarray(lines).astype(np.int64, copy=False)
    return sharded_lru_hits_for_sets(
        lines64, set_indices(lines64, num_sets), ways, jobs=jobs
    )


# ----------------------------------------------------------------------
# Fused hierarchy sweeps
# ----------------------------------------------------------------------


def _upstream_pass(
    trace: Trace, config: HierarchyConfig
) -> tuple[dict[str, LevelStats], np.ndarray]:
    """Replay the trace through L1-I/L1-D/L2 once; return stats + L3 input.

    Identical filtering to ``hierarchy._simulate_fast`` — each private
    level sees its thread's stream filtered by the level above (the
    warm-state handoff), and the returned indices are the program-order
    merge of every thread's L2 misses.
    """
    stats = {name: LevelStats(name=name) for name in ("L1I", "L1D", "L2")}
    is_instr = trace.kind == AccessKind.INSTR
    l2_parts: list[np.ndarray] = []
    for t in trace.thread_ids():
        of_thread = trace.thread == np.uint16(t)
        instr_idx = np.flatnonzero(of_thread & is_instr)
        data_idx = np.flatnonzero(of_thread & ~is_instr)
        misses: list[np.ndarray] = []
        if len(instr_idx):
            misses.append(
                _fast_level_pass(trace, instr_idx, config.l1i.geometry, stats["L1I"])
            )
        if len(data_idx):
            misses.append(
                _fast_level_pass(trace, data_idx, config.l1d.geometry, stats["L1D"])
            )
        if not misses:
            continue
        l2_in = np.sort(np.concatenate(misses))
        if len(l2_in):
            l2_parts.append(
                _fast_level_pass(trace, l2_in, config.l2.geometry, stats["L2"])
            )
    l3_idx = (
        np.sort(np.concatenate(l2_parts)) if l2_parts else np.empty(0, np.int64)
    )
    return stats, l3_idx


def simulate_hierarchy_sweep(
    trace: Trace,
    configs: list[HierarchyConfig],
    engine: str = "auto",
    jobs: int = 1,
) -> list[HierarchyResult]:
    """Simulate many hierarchy configurations with shared passes.

    The campaign form of
    :func:`~repro.cachesim.hierarchy.simulate_hierarchy`: results are
    returned in ``configs`` order and each is bit-identical to a
    per-point ``simulate_hierarchy(trace, config, engine="fast")`` run.
    Work is shared at two levels — one upstream L1/L2 replay per distinct
    (L1-I, L1-D, L2) geometry triple, and one stack-distance pass per
    last-level associativity ladder (fixed block size and set count);
    capacity points that change the set count break Mattson inclusion
    and replay the (already filtered) L3 stream per point, optionally
    sharded over ``jobs`` spawned workers.

    ``engine`` follows the usual contract: inclusive hierarchies are not
    vectorizable, so ``"fast"`` raises on them and ``"auto"`` falls back
    to per-point reference simulation.
    """
    if not configs:
        raise ConfigurationError("need at least one hierarchy configuration")
    if len(trace) == 0:
        raise SimulationError("cannot simulate an empty trace")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    fast_ok = all(not config.inclusive for config in configs)
    if fastsim.resolve_engine(engine, fast_supported=fast_ok) == "reference":
        return [
            simulate_hierarchy(trace, config, engine="exact")
            for config in configs
        ]

    results: list[HierarchyResult | None] = [None] * len(configs)
    groups: dict[tuple, list[int]] = {}
    for i, config in enumerate(configs):
        key = (config.l1i.geometry, config.l1d.geometry, config.l2.geometry)
        groups.setdefault(key, []).append(i)

    for members in groups.values():
        upstream, l3_idx = _upstream_pass(trace, configs[members[0]])

        # Sub-group the last level into associativity ladders.
        ladders: dict[tuple[int, int], list[int]] = {}
        for i in members:
            l3 = configs[i].l3
            if l3 is None or not len(l3_idx):
                levels = {name: s.copy() for name, s in upstream.items()}
                if l3 is not None:
                    # Nothing reached the L3; keep its zeroed stats so the
                    # result matches a per-point run level for level.
                    levels["L3"] = LevelStats(name="L3")
                results[i] = HierarchyResult(
                    levels=levels,
                    instruction_count=trace.instruction_count,
                )
                continue
            geo = l3.geometry
            ladders.setdefault((geo.block_size, geo.num_sets), []).append(i)

        lines_by_block: dict[int, np.ndarray] = {}
        for (block_size, num_sets), ladder in ladders.items():
            lines = lines_by_block.get(block_size)
            if lines is None:
                lines = lines_of_addrs(trace.addr[l3_idx], block_size)
                lines_by_block[block_size] = lines
            segments = trace.segment[l3_idx]
            kinds = trace.kind[l3_idx]
            if len(ladder) > 1:
                ways = [configs[i].l3.geometry.effective_ways for i in ladder]
                masks = fast_lru_hits_ladder(lines, num_sets, ways)
            else:
                ways = [configs[ladder[0]].l3.geometry.effective_ways]
                masks = [
                    sharded_lru_hits(lines, num_sets, ways[0], jobs=jobs)
                ]
            for i, hits in zip(ladder, masks):
                stats = {name: s.copy() for name, s in upstream.items()}
                l3_stats = LevelStats(name="L3")
                l3_stats.record_arrays(segments, kinds, hits)
                stats["L3"] = l3_stats
                results[i] = HierarchyResult(
                    levels=stats, instruction_count=trace.instruction_count
                )

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
