"""Result containers for cache simulation.

The paper reports everything as hit rates and misses-per-kilo-instruction
(MPKI), broken down by software segment (code / heap / shard / stack) and by
access kind (instruction vs. load) — e.g. Table I's "L2$ instr MPKI" and
"L3$ load MPKI", and Figure 6's per-segment curves.  :class:`LevelStats`
tracks an access/miss matrix over (segment, kind) so every such slice is one
method call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.memtrace.trace import AccessKind, Segment


@dataclass
class LevelStats:
    """Access and miss counts of one cache level, by (segment, kind)."""

    name: str
    accesses: np.ndarray = field(
        default_factory=lambda: np.zeros((len(Segment), len(AccessKind)), np.int64)
    )
    misses: np.ndarray = field(
        default_factory=lambda: np.zeros((len(Segment), len(AccessKind)), np.int64)
    )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, segment: int, kind: int, hit: bool) -> None:
        """Record one access (exact-engine path)."""
        self.accesses[segment, kind] += 1
        if not hit:
            self.misses[segment, kind] += 1

    def record_arrays(
        self, segments: np.ndarray, kinds: np.ndarray, hits: np.ndarray
    ) -> None:
        """Record a batch of accesses (analytic-engine path)."""
        if not (len(segments) == len(kinds) == len(hits)):
            raise SimulationError("segment/kind/hit arrays must align")
        flat = segments.astype(np.int64) * len(AccessKind) + kinds
        counts = np.bincount(flat, minlength=self.accesses.size)
        self.accesses += counts.reshape(self.accesses.shape)
        miss_counts = np.bincount(flat[~hits], minlength=self.misses.size)
        self.misses += miss_counts.reshape(self.misses.shape)

    def copy(self) -> "LevelStats":
        """Independent deep copy of the count matrices.

        The fused sweep engine (:mod:`repro.cachesim.fused`) runs the
        upstream levels once per configuration group and hands every
        configuration its own copy of the shared stats.
        """
        return LevelStats(
            name=self.name,
            accesses=self.accesses.copy(),
            misses=self.misses.copy(),
        )

    def merged(self, other: "LevelStats") -> "LevelStats":
        """Combine two stats objects (e.g. per-thread private caches)."""
        if other.name != self.name:
            raise SimulationError(
                f"cannot merge stats of {self.name!r} and {other.name!r}"
            )
        return LevelStats(
            name=self.name,
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )

    # ------------------------------------------------------------------
    # Totals and slices
    # ------------------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return int(self.accesses.sum())

    @property
    def total_misses(self) -> int:
        return int(self.misses.sum())

    def accesses_for(
        self,
        segments: tuple[Segment, ...] | None = None,
        kinds: tuple[AccessKind, ...] | None = None,
    ) -> int:
        """Access count restricted to the given segments and kinds."""
        return int(self._slice(self.accesses, segments, kinds).sum())

    def misses_for(
        self,
        segments: tuple[Segment, ...] | None = None,
        kinds: tuple[AccessKind, ...] | None = None,
    ) -> int:
        """Miss count restricted to the given segments and kinds."""
        return int(self._slice(self.misses, segments, kinds).sum())

    @staticmethod
    def _slice(matrix, segments, kinds):
        seg_idx = [int(s) for s in segments] if segments else slice(None)
        sub = matrix[seg_idx, :]
        if kinds:
            sub = sub[:, [int(k) for k in kinds]]
        return sub

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------

    def hit_rate(
        self,
        segments: tuple[Segment, ...] | None = None,
        kinds: tuple[AccessKind, ...] | None = None,
    ) -> float:
        """Hit rate over the selected slice; raises on an empty slice."""
        accesses = self.accesses_for(segments, kinds)
        if accesses == 0:
            raise SimulationError(
                f"no accesses recorded at {self.name} for the requested slice"
            )
        return 1.0 - self.misses_for(segments, kinds) / accesses

    def mpki(
        self,
        instruction_count: int,
        segments: tuple[Segment, ...] | None = None,
        kinds: tuple[AccessKind, ...] | None = None,
    ) -> float:
        """Misses per kilo-instruction over the selected slice."""
        if instruction_count <= 0:
            raise SimulationError("instruction_count must be positive for MPKI")
        return self.misses_for(segments, kinds) / (instruction_count / 1000.0)


@dataclass
class HierarchyResult:
    """Per-level statistics of one hierarchy simulation."""

    levels: dict[str, LevelStats]
    instruction_count: int

    def __post_init__(self) -> None:
        if self.instruction_count <= 0:
            raise SimulationError("instruction_count must be positive")

    def level(self, name: str) -> LevelStats:
        """Stats of one level by name (e.g. ``"L2"``)."""
        try:
            return self.levels[name]
        except KeyError:
            raise SimulationError(
                f"no level named {name!r}; have {sorted(self.levels)}"
            ) from None

    # Convenience accessors for the paper's headline metrics ------------

    def instr_mpki(self, level: str) -> float:
        """Instruction-fetch MPKI at a level (Table I "L2$ instr MPKI")."""
        return self.level(level).mpki(
            self.instruction_count, kinds=(AccessKind.INSTR,)
        )

    def load_mpki(self, level: str) -> float:
        """Load MPKI at a level (Table I "L3$ load MPKI")."""
        return self.level(level).mpki(
            self.instruction_count, kinds=(AccessKind.LOAD,)
        )

    def data_mpki(self, level: str) -> float:
        """Load + store MPKI at a level."""
        return self.level(level).mpki(
            self.instruction_count, kinds=(AccessKind.LOAD, AccessKind.STORE)
        )

    def segment_mpki(self, level: str, segment: Segment) -> float:
        """MPKI of one software segment at a level (Figure 6)."""
        return self.level(level).mpki(self.instruction_count, segments=(segment,))

    def render(self) -> str:
        """Multi-line text table of MPKI per level and segment."""
        rows = [f"{'level':<6} {'total MPKI':>10} " + " ".join(
            f"{seg.name.lower():>8}" for seg in Segment
        )]
        for name, stats in self.levels.items():
            per_seg = " ".join(
                f"{stats.mpki(self.instruction_count, segments=(seg,)):8.2f}"
                for seg in Segment
            )
            total = stats.mpki(self.instruction_count)
            rows.append(f"{name:<6} {total:10.2f} {per_seg}")
        return "\n".join(rows)
