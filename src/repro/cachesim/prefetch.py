"""Hardware-prefetcher models.

The paper's PLT1 has "two [prefetchers] for the L1-D cache and two for the
L2 cache" (§II-E), and measures a ~5% throughput benefit, about 1% of which
comes from the L2 adjacent-line prefetcher exploiting spatial locality.  We
model the two behaviours that matter at trace level:

* :class:`NextLinePrefetcher` — the adjacent-line prefetcher: every miss
  pulls in the next sequential line.
* :class:`StreamPrefetcher` — the streamer: detects sequential miss streams
  and runs ahead of them by a configurable degree; this is what accelerates
  posting-list (shard) scans.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class PrefetcherBase:
    """Interface: observe demand misses, propose lines to fill."""

    def on_miss(self, line: int) -> list[int]:
        """Return the lines to prefetch in response to a demand miss."""
        raise NotImplementedError


class NextLinePrefetcher(PrefetcherBase):
    """Fetch ``line + 1`` on every demand miss (adjacent-line prefetch)."""

    def on_miss(self, line: int) -> list[int]:
        return [line + 1]


class StreamPrefetcher(PrefetcherBase):
    """Stride-1 stream detector with a bounded stream table.

    A miss that continues a tracked stream (i.e. hits the stream's expected
    next line) confirms the stream and prefetches ``degree`` lines ahead;
    any other miss allocates a new tracked stream.  The table is LRU-bounded
    to ``max_streams``, mirroring the limited stream trackers of real
    prefetch engines.
    """

    def __init__(self, degree: int = 2, max_streams: int = 16) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        if max_streams < 1:
            raise ConfigurationError(
                f"max_streams must be >= 1, got {max_streams}"
            )
        self.degree = degree
        self.max_streams = max_streams
        # expected-next-line -> None; OrderedDict gives LRU eviction.
        self._expected: OrderedDict[int, None] = OrderedDict()
        self.issued = 0
        self.streams_confirmed = 0

    def on_miss(self, line: int) -> list[int]:
        if line in self._expected:
            del self._expected[line]
            self.streams_confirmed += 1
            prefetches = [line + i for i in range(1, self.degree + 1)]
            self._track(line + 1)
            self.issued += len(prefetches)
            return prefetches
        self._track(line + 1)
        return []

    def _track(self, expected_next: int) -> None:
        self._expected[expected_next] = None
        self._expected.move_to_end(expected_next)
        while len(self._expected) > self.max_streams:
            self._expected.popitem(last=False)
