"""Cold / capacity / conflict miss classification (the 3C model).

The paper's §III-C attributes search misses to miss types: shard accesses
are mostly cold, heap accesses mostly capacity, and conflicts are minor
(Figure 7a: full associativity removes ~7.4% of L1 misses, <1% at L2/L3).

Classification follows the standard definition:

* **cold** — first-ever touch of the line;
* **capacity** — non-cold miss that would also miss in a fully-associative
  LRU cache of equal capacity (exact Mattson stack distance > capacity);
* **conflict** — the remainder: misses introduced by limited associativity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachesim.cache import CacheGeometry, SetAssociativeCache
from repro.cachesim.mattson import COLD, stack_distances
from repro.errors import TraceError


@dataclass(frozen=True)
class MissBreakdown:
    """Counts of one stream's accesses by outcome."""

    accesses: int
    hits: int
    cold: int
    capacity: int
    conflict: int

    def __post_init__(self) -> None:
        total = self.hits + self.cold + self.capacity + self.conflict
        if total != self.accesses:
            raise TraceError(
                f"breakdown does not sum to accesses: {total} != {self.accesses}"
            )

    @property
    def misses(self) -> int:
        return self.cold + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            raise TraceError("miss rate of an empty stream is undefined")
        return self.misses / self.accesses

    def fraction(self, kind: str) -> float:
        """Fraction of misses of one kind (``cold|capacity|conflict``)."""
        if self.misses == 0:
            return 0.0
        return getattr(self, kind) / self.misses


def classify_misses(
    lines: np.ndarray, geometry: CacheGeometry, engine: str = "reference"
) -> MissBreakdown:
    """Classify every miss of one cache over a line stream.

    Runs the exact set-associative simulation and the exact stack-distance
    analysis.  With ``engine="reference"`` both run as per-access Python
    loops, so that path is intended for streams up to a few hundred
    thousand accesses; ``engine="fast"``/``"auto"`` route both through the
    bit-identical vectorized kernels in :mod:`repro.cachesim.fastsim`.
    """
    from repro.cachesim import fastsim

    n = len(lines)
    if n == 0:
        raise TraceError("cannot classify an empty stream")
    if fastsim.resolve_engine(engine) == "fast":
        lines64 = np.asarray(lines, np.int64)
        hits = fastsim.fast_lru_hits(
            lines64, geometry.num_sets, geometry.effective_ways
        )
        distances = fastsim.fast_stack_distances(lines64)
    else:
        hits = SetAssociativeCache(geometry).simulate(lines)
        distances = stack_distances(lines)
    capacity_lines = geometry.capacity_lines

    is_miss = ~hits
    is_cold = distances == COLD
    would_miss_fa = (~is_cold) & (distances > capacity_lines)

    cold = int(np.count_nonzero(is_miss & is_cold))
    capacity = int(np.count_nonzero(is_miss & would_miss_fa))
    conflict = int(np.count_nonzero(is_miss)) - cold - capacity
    return MissBreakdown(
        accesses=n,
        hits=int(np.count_nonzero(hits)),
        cold=cold,
        capacity=capacity,
        conflict=conflict,
    )
