"""Exact functional set-associative cache with LRU replacement.

This is the paper's simulator (§III-A): functional (no timing), LRU,
configurable associativity and block size, with way-masking to model Intel
Cache Allocation Technology (the paper uses CAT to shrink the L3 in
Figures 8–10) and invalidation support for inclusive hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._units import format_size, is_power_of_two
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/block geometry of one cache.

    ``ways_enabled`` models CAT way-partitioning: lookups see all ways, but
    allocation is restricted to the enabled ways, reducing both effective
    capacity and effective associativity exactly as CAT does.
    """

    size: int
    assoc: int
    block_size: int = 64
    ways_enabled: int | None = None

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0:
            raise ConfigurationError(
                f"size and assoc must be positive: size={self.size}, "
                f"assoc={self.assoc}"
            )
        if not is_power_of_two(self.block_size):
            raise ConfigurationError(
                f"block_size must be a power of two, got {self.block_size}"
            )
        if self.size % (self.assoc * self.block_size):
            raise ConfigurationError(
                f"size {self.size} is not divisible by assoc*block "
                f"({self.assoc}*{self.block_size})"
            )
        ways = self.ways_enabled
        if ways is not None and not 1 <= ways <= self.assoc:
            raise ConfigurationError(
                f"ways_enabled must be in [1, {self.assoc}], got {ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.block_size)

    @property
    def effective_ways(self) -> int:
        """Ways available for allocation (assoc unless CAT-masked)."""
        return self.ways_enabled if self.ways_enabled is not None else self.assoc

    @property
    def effective_size(self) -> int:
        """Allocatable capacity in bytes (reduced by way masking)."""
        return self.num_sets * self.effective_ways * self.block_size

    @property
    def capacity_lines(self) -> int:
        """Allocatable capacity in cache lines."""
        return self.num_sets * self.effective_ways

    def with_ways(self, ways: int) -> "CacheGeometry":
        """Return a copy with CAT restricted to ``ways`` ways."""
        return CacheGeometry(self.size, self.assoc, self.block_size, ways)

    def __str__(self) -> str:
        cat = (
            f", CAT {self.ways_enabled}/{self.assoc} ways"
            if self.ways_enabled is not None
            else ""
        )
        return (
            f"{format_size(self.size)} {self.assoc}-way "
            f"{self.block_size}B-block{cat}"
        )

    @classmethod
    def fully_associative(cls, size: int, block_size: int = 64) -> "CacheGeometry":
        """A fully-associative geometry of the given size."""
        if size % block_size:
            raise ConfigurationError(
                f"size {size} not divisible by block_size {block_size}"
            )
        return cls(size=size, assoc=size // block_size, block_size=block_size)


#: Replacement policies supported by :class:`SetAssociativeCache`.
REPLACEMENT_POLICIES = ("lru", "fifo", "random")


class SetAssociativeCache:
    """Functional set-associative cache operating on line addresses.

    Line addresses are ``byte_addr // block_size`` — computed by the caller
    so a line stream can be shared between caches of equal block size.

    The paper's simulator is LRU (§III-A), the default here; FIFO and
    random are provided for policy-sensitivity studies (they bracket LRU
    for most workloads and are what simpler LLC designs actually ship).
    """

    def __init__(
        self, geometry: CacheGeometry, replacement: str = "lru", seed: int = 0
    ) -> None:
        if replacement not in REPLACEMENT_POLICIES:
            raise ConfigurationError(
                f"replacement must be one of {REPLACEMENT_POLICIES}, "
                f"got {replacement!r}"
            )
        self.geometry = geometry
        self.replacement = replacement
        # Power-of-two set counts index with a mask; others use modulo
        # (banked caches like POWER8's 96 MiB L3 have non-power-of-two
        # set counts).
        self._num_sets = geometry.num_sets
        self._ways = geometry.effective_ways
        # One python list per set; recency/insertion order at the end.
        # Tags are full line ids — wasteful in hardware, free in simulation,
        # and it lets invalidate() work without reconstructing addresses.
        self._sets: list[list[int]] = [[] for _ in range(geometry.num_sets)]
        import random as _random

        self._rng = _random.Random(seed)

    # ------------------------------------------------------------------

    def access(self, line: int) -> tuple[bool, int | None]:
        """Access one line; return ``(hit, evicted_line_or_None)``."""
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            if self.replacement == "lru":
                cache_set.remove(line)
                cache_set.append(line)
            return True, None
        cache_set.append(line)
        victim = None
        if len(cache_set) > self._ways:
            if self.replacement == "random":
                victim = cache_set.pop(self._rng.randrange(len(cache_set) - 1))
            else:  # lru and fifo both evict the oldest-ordered entry
                victim = cache_set.pop(0)
        return False, victim

    def contains(self, line: int) -> bool:
        """Check residency without updating recency."""
        return line in self._sets[line % self._num_sets]

    def invalidate(self, line: int) -> bool:
        """Remove a line (inclusion back-invalidation); True if present."""
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            cache_set.remove(line)
            return True
        return False

    def fill(self, line: int) -> int | None:
        """Install a line without counting as a demand access (prefetch).

        Returns the evicted line, if any.  A line already resident is
        promoted to MRU, matching typical prefetch-on-hit behaviour.
        """
        hit, victim = self.access(line)
        return victim

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        """Empty the cache."""
        for s in self._sets:
            s.clear()

    # ------------------------------------------------------------------

    def simulate(self, lines: np.ndarray, engine: str = "reference") -> np.ndarray:
        """Simulate a line stream; return a boolean hit array.

        Same semantics as repeated :meth:`access` calls (minus eviction
        reporting), continuing from — and updating — the current cache
        state.  ``engine`` selects the implementation: ``"reference"`` is
        the per-access loop below; ``"fast"``/``"auto"`` route LRU
        simulations through the vectorized kernels of
        :mod:`repro.cachesim.fastsim` (bit-identical; non-LRU policies
        fall back under ``"auto"`` and raise under ``"fast"``).
        """
        from repro.cachesim import fastsim

        resolved = fastsim.resolve_engine(
            engine, fast_supported=self.replacement == "lru"
        )
        if resolved == "fast":
            return self._simulate_fast(lines)
        if self.replacement != "lru":
            hits = np.empty(len(lines), bool)
            for i, line in enumerate(lines.tolist()):
                hits[i] = self.access(line)[0]
            return hits
        sets = self._sets
        num_sets = self._num_sets
        ways = self._ways
        hits = np.empty(len(lines), bool)
        for i, line in enumerate(lines.tolist()):
            cache_set = sets[line % num_sets]
            if line in cache_set:
                cache_set.remove(line)
                cache_set.append(line)
                hits[i] = True
            else:
                cache_set.append(line)
                if len(cache_set) > ways:
                    del cache_set[0]
                hits[i] = False
        return hits

    def _simulate_fast(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized LRU batch replay that keeps ``_sets`` in sync."""
        from itertools import chain

        from repro.cachesim import fastsim

        if len(lines) == 0:
            return np.empty(0, bool)
        warm = np.fromiter(
            chain.from_iterable(self._sets), np.int64, count=self.resident_lines
        )
        hits, (set_idx, tags, ranks, __) = fastsim.lru_batch(
            np.asarray(lines).astype(np.int64, copy=False),
            self._num_sets,
            self._ways,
            warm=warm,
        )
        # Rebuild the per-set lists oldest-to-newest (rank 0 is the MRU).
        order = np.lexsort((-ranks, set_idx))
        new_sets: list[list[int]] = [[] for _ in range(self._num_sets)]
        for s, line in zip(set_idx[order].tolist(), tags[order].tolist()):
            new_sets[s].append(line)
        self._sets = new_sets
        return hits
