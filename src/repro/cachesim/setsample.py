"""Set-sampling cache estimation.

The standard industrial trick for fast cache studies (and the UMON/
utility-monitor hardware the CAT ecosystem grew from): simulate only a
random subset of the cache's sets and scale the counts up.  Accesses hash
to sets uniformly, so a 1/k set sample sees ~1/k of the accesses and its
hit *rate* is an unbiased estimate of the full cache's.

This gives the exact engine a fast mode for big streams where the analytic
engines' fully-associative assumption is not wanted (e.g. conflict-miss
studies at scale).

Caveat (true of hardware UMONs too): the estimator is unbiased but its
variance grows with the stream's skew — when a handful of hot lines carry
most accesses, whether their sets land in the sample dominates the
estimate.  Use larger ``sample_fraction`` (or average over seeds) for
heavily Zipfian streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cachesim.cache import CacheGeometry
from repro.cachesim.indexing import set_indices
from repro.errors import ConfigurationError, TraceError


@dataclass(frozen=True)
class SampledEstimate:
    """Outcome of a set-sampled simulation."""

    sampled_sets: int
    total_sets: int
    sampled_accesses: int
    sampled_hits: int
    #: Extra set draws needed before any access landed in the sample
    #: (0 when the first draw succeeded).
    redraws: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate over the sampled accesses (the full-cache estimate)."""
        if self.sampled_accesses == 0:
            raise TraceError("no accesses fell into the sampled sets")
        return self.sampled_hits / self.sampled_accesses

    @property
    def sample_fraction(self) -> float:
        """Fraction of the cache's sets that were actually simulated."""
        return self.sampled_sets / self.total_sets


def sampled_hit_rate(
    lines: np.ndarray,
    geometry: CacheGeometry,
    sample_fraction: float = 1 / 16,
    seed: int = 0,
    replacement: str = "lru",
    engine: str = "reference",
    jobs: int = 1,
    max_redraws: int = 8,
) -> SampledEstimate:
    """Estimate a cache's hit rate by simulating a sample of its sets.

    The sampled sets are simulated *exactly* (same associativity and
    policy); only accesses mapping to them are replayed.  ``engine="fast"``
    replays them through the vectorized LRU kernel (LRU only — FIFO falls
    back to the reference loop under ``"auto"`` and raises under
    ``"fast"``); the estimate is bit-identical either way.  ``jobs > 1``
    additionally shards the fast replay across a spawn-based worker pool by
    set index (sets are independent, so the counts stay bit-identical; see
    :func:`repro.cachesim.fused.sharded_lru_hits_for_sets`).

    A sparse trace can miss every sampled set (small ``sample_fraction``
    against a stream concentrated in a few sets), which would leave the
    estimate undefined.  Rather than handing the caller an empty estimate
    whose ``hit_rate`` raises, the draw is retried deterministically with
    an incremented seed (``seed + 1``, ``seed + 2``, ... up to
    ``max_redraws`` extra draws) until some access lands in the sample;
    only when every draw comes up empty does a :class:`TraceError`
    surface.  Online estimators that resample every epoch rely on this.
    """
    from repro.cachesim import fastsim

    resolved = fastsim.resolve_engine(engine, fast_supported=replacement == "lru")
    if not 0 < sample_fraction <= 1:
        raise ConfigurationError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    if len(lines) == 0:
        raise TraceError("cannot sample an empty stream")
    if max_redraws < 0:
        raise ConfigurationError(
            f"max_redraws must be >= 0, got {max_redraws}"
        )
    num_sets = geometry.num_sets
    # Round half-up, not truncate: int() turned 48 sets * 1/3 into 15
    # sampled sets (and fractions just shy of 1.0 into a partial cache).
    sampled_sets = min(num_sets, max(1, math.floor(num_sets * sample_fraction + 0.5)))
    lines = np.asarray(lines, np.int64)
    set_of = set_indices(lines, num_sets)
    for attempt in range(max_redraws + 1):
        rng = np.random.default_rng(seed + attempt)
        chosen = rng.choice(num_sets, size=sampled_sets, replace=False)
        chosen_mask = np.zeros(num_sets, bool)
        chosen_mask[chosen] = True
        keep = chosen_mask[set_of]
        if keep.any():
            break
    else:
        raise TraceError(
            f"no accesses fell into the sampled sets after "
            f"{max_redraws + 1} deterministic draws (seeds "
            f"{seed}..{seed + max_redraws}); raise sample_fraction"
        )
    sampled_lines = lines[keep]

    # Re-index the sampled sets densely so the mini-cache has exactly
    # sampled_sets sets while every line keeps its original set mapping.
    dense_index = np.full(num_sets, -1, np.int64)
    dense_index[np.sort(chosen)] = np.arange(sampled_sets)
    dense_sets = dense_index[set_of[keep]]
    if resolved == "fast":
        if jobs > 1:
            from repro.cachesim import fused  # deferred: only sharded runs need it

            hit_mask = fused.sharded_lru_hits_for_sets(
                sampled_lines, dense_sets, geometry.effective_ways, jobs=jobs
            )
        else:
            hit_mask = fastsim.fast_lru_hits_for_sets(
                sampled_lines, dense_sets, geometry.effective_ways
            )
        hits = int(np.count_nonzero(hit_mask))
    else:
        mini = _MiniCache(sampled_sets, geometry.effective_ways, replacement)
        hits = 0
        for dense_set, line in zip(dense_sets.tolist(), sampled_lines.tolist()):
            hits += mini.access(dense_set, line)
    return SampledEstimate(
        sampled_sets=sampled_sets,
        total_sets=num_sets,
        sampled_accesses=len(sampled_lines),
        sampled_hits=hits,
        redraws=attempt,
    )


class _MiniCache:
    """Per-set LRU/FIFO state for the sampled sets only."""

    def __init__(self, num_sets: int, ways: int, replacement: str) -> None:
        if replacement not in ("lru", "fifo"):
            raise ConfigurationError(
                "set sampling supports 'lru' and 'fifo' replacement"
            )
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._ways = ways
        self._lru = replacement == "lru"

    def access(self, set_index: int, line: int) -> bool:
        cache_set = self._sets[set_index]
        if line in cache_set:
            if self._lru:
                cache_set.remove(line)
                cache_set.append(line)
            return True
        cache_set.append(line)
        if len(cache_set) > self._ways:
            del cache_set[0]
        return False
