"""Streaming SHARDS miss-ratio-curve estimation (Waldspurger et al., 2015).

The exact engines (:mod:`repro.cachesim.mattson`,
:mod:`repro.cachesim.misscurve`) need the whole trace; a serving leaf
that wants to *learn its miss curve live* cannot afford either the
memory or the post-hoc pass.  SHARDS ("Spatially Hashed Approximate
Reuse Distance Sampling") makes the classic stack-distance analysis
streaming and O(1)-memory:

* **Spatial hashing** — a line is sampled iff ``hash(line) < T`` for a
  fixed uniform hash, so sampling is *per line*, not per access: every
  access to a sampled line is observed, which is what keeps reuse pairs
  intact (temporal sampling would break them).
* **Conditional inclusion** — stack distances are measured inside the
  sampled sub-stream only, then scaled by ``1 / R`` (``R = T`` is the
  sampling rate): a sampled distance ``d`` estimates a true distance
  ``d / R`` because a fraction ``R`` of the distinct lines between two
  touches of a sampled line are themselves sampled.
* **Fixed-size reservoir with rate adaptation** (SHARDS_adj) — when the
  set of tracked lines outgrows ``max_reservoir``, the largest-hash
  lines are evicted and the threshold drops to their hash, lowering the
  effective rate; memory is thereby bounded no matter how large the
  working set grows, at the cost of coarser estimates.

Each scaled distance lands in a fixed log-spaced histogram with weight
``1 / R``; the resulting :class:`ShardsCurve` answers the same
``hit_rate(capacity_lines)`` questions as
:class:`~repro.cachesim.misscurve.MissRatioCurve` and is validated
against the exact Mattson analysis by the differential test suite (at
``rate=1.0`` with edge-aligned capacities the estimate is *exact*).

The estimator feeds the online control loop: one instance per serving
leaf (:class:`repro.search.simmem.LeafCacheMonitor`) publishes live
curves and health to ``repro.cachesim.shards.*`` metrics, and
:mod:`repro.search.cachectl` re-partitions shared-cache ways from them.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigurationError, TraceError

#: Wrap mask for 64-bit hash arithmetic on Python ints.
_MASK64 = (1 << 64) - 1

#: Scaled-distance histogram edges: exact single-integer buckets up to
#: this point, multiplicative buckets beyond it.
_EXACT_EDGE_LIMIT = 128

#: Multiplicative growth of the log-spaced distance buckets (~9% wide;
#: linear interpolation inside a bucket keeps curve error well below
#: the bucket width).
_EDGE_FACTOR = 2.0 ** (1.0 / 8.0)

#: Largest representable scaled distance (lines); anything beyond the
#: last edge can only miss at every capacity this library sweeps.
_MAX_EDGE = 2.0**42


def _default_distance_edges() -> np.ndarray:
    """The shared scaled-distance bucket ladder (module-level constant)."""
    edges = [float(d) for d in range(1, _EXACT_EDGE_LIMIT + 1)]
    while edges[-1] < _MAX_EDGE:
        edges.append(edges[-1] * _EDGE_FACTOR)
    return np.asarray(edges, np.float64)


#: Bucket upper edges shared by every estimator (copy before mutating).
DISTANCE_EDGES = _default_distance_edges()


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a high-quality deterministic 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_unit(lines: np.ndarray, seed: int = 0) -> np.ndarray:
    """Deterministic per-line hash values in ``[0, 1)``, vectorized.

    The SplitMix64 finalizer applied to ``line + salt(seed)``; a pure
    function of its arguments (no ambient RNG), so two estimators with
    the same seed sample *nested* line sets across any pair of rates —
    the monotonicity property the Hypothesis suite pins.
    """
    salt = np.uint64(_mix64(seed & _MASK64))
    with np.errstate(over="ignore"):
        v = np.asarray(lines).astype(np.uint64) + salt
        v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        v = v ^ (v >> np.uint64(31))
    return (v >> np.uint64(11)).astype(np.float64) / float(1 << 53)


class _SlotTree:
    """Fenwick tree over sampled-access time slots, with compaction.

    Olken's structure restricted to the sampled sub-stream: each tracked
    line flags the slot of its most recent access, and a reuse's sampled
    stack distance is the count of flags after the line's previous slot.
    Slots are consumed monotonically; when they run out the tree is
    rebuilt over the surviving flags (at most the reservoir size), which
    is what keeps memory bounded while the stream is unbounded.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._tree = [0] * (capacity + 1)
        self.flagged = 0

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self._tree
        while i <= self.capacity:
            tree[i] += delta
            i += i & (-i)
        self.flagged += delta

    def prefix_sum(self, index: int) -> int:
        """Sum of flags in ``[0, index]``."""
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


class ShardsEstimator:
    """Streaming, bounded-memory LRU miss-ratio-curve estimator.

    Parameters
    ----------
    rate:
        Initial spatial sampling rate ``R`` in ``(0, 1]``; ``0.01``
        observes ~1% of distinct lines and is the operating point the
        accuracy gate validates.
    max_reservoir:
        Maximum tracked (sampled, distinct) lines; ``None`` disables
        rate adaptation.  With a bound, evictions lower the effective
        rate so memory never exceeds the reservoir plus a constant.
    seed:
        Salts the spatial hash; estimators with equal seeds sample
        nested line sets across rates.

    Feed accesses with :meth:`feed` (vectorized; accepts any int array
    of cache-line ids) or :meth:`observe`; read the running estimate
    with :meth:`curve` and health with :attr:`rate`,
    :attr:`reservoir_lines`, :attr:`reservoir_evictions`.
    """

    def __init__(
        self,
        rate: float = 0.01,
        max_reservoir: int | None = None,
        seed: int = 0,
    ) -> None:
        """Validate the operating point; see the class docstring."""
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(f"rate must be in (0, 1], got {rate}")
        if max_reservoir is not None and max_reservoir < 2:
            raise ConfigurationError(
                f"max_reservoir must be >= 2 or None, got {max_reservoir}"
            )
        self.initial_rate = float(rate)
        self.max_reservoir = max_reservoir
        self.seed = seed
        self._threshold = float(rate)
        self._edges = DISTANCE_EDGES
        #: Estimated reuses per scaled-distance bucket (weights of 1/R).
        self._weights = np.zeros(len(self._edges) + 1, np.float64)
        self._cold_weight = 0.0
        self._total_accesses = 0
        self._sampled_accesses = 0
        self._cold_touches = 0
        self._evictions = 0
        self._compactions = 0
        #: line -> slot of its most recent sampled access; insertion
        #: implies hash(line) < threshold at the time of first touch.
        self._last_slot: dict[int, int] = {}
        #: Max-heap (negated hash) over tracked lines, for evictions.
        self._by_hash: list[tuple[float, int]] = []
        if max_reservoir is not None:
            capacity = max(1024, 4 * max_reservoir)
        else:
            capacity = 4096
        self._slots = _SlotTree(capacity)
        self._next_slot = 0

    # -- health --------------------------------------------------------

    @property
    def rate(self) -> float:
        """Current effective sampling rate (drops under adaptation)."""
        return self._threshold

    @property
    def total_accesses(self) -> int:
        """Every access fed so far, sampled or not (the exact denominator)."""
        return self._total_accesses

    @property
    def sampled_accesses(self) -> int:
        """Accesses that fell on sampled lines."""
        return self._sampled_accesses

    @property
    def reservoir_lines(self) -> int:
        """Distinct lines currently tracked (bounded by ``max_reservoir``)."""
        return len(self._last_slot)

    @property
    def reservoir_evictions(self) -> int:
        """Lines evicted by rate adaptation since construction."""
        return self._evictions

    @property
    def compactions(self) -> int:
        """Slot-tree rebuilds (each is O(reservoir), amortized O(1)/access)."""
        return self._compactions

    # -- feeding -------------------------------------------------------

    def observe(self, line: int) -> None:
        """Feed a single cache-line access (streaming convenience)."""
        self.feed(np.asarray([line], np.int64))

    def feed(self, lines: np.ndarray) -> None:
        """Feed a batch of cache-line ids in program order.

        Unsampled accesses cost one vectorized hash compare; only the
        sampled sub-stream (fraction ~``rate``) takes the per-access
        Python path.  The threshold only ever decreases, so prefiltering
        at the current threshold is sound even when adaptation fires
        mid-batch (each sampled access is re-checked).
        """
        lines = np.asarray(lines)
        if lines.ndim != 1:
            raise TraceError(f"lines must be 1-D, got shape {lines.shape}")
        self._total_accesses += len(lines)
        if len(lines) == 0:
            return
        hashes = hash_unit(lines, seed=self.seed)
        mask = hashes < self._threshold
        if not mask.any():
            return
        for line, h in zip(
            lines[mask].tolist(), hashes[mask].tolist()
        ):
            if h >= self._threshold:
                continue  # adaptation fired earlier in this batch
            self._observe_sampled(int(line), h)

    def _observe_sampled(self, line: int, line_hash: float) -> None:
        self._sampled_accesses += 1
        if self._next_slot >= self._slots.capacity:
            self._compact()
        slot = self._next_slot
        self._next_slot += 1
        prev = self._last_slot.get(line)
        if prev is None:
            self._cold_weight += 1.0 / self._threshold
            self._cold_touches += 1
            heapq.heappush(self._by_hash, (-line_hash, line))
        else:
            distance = self._slots.flagged - self._slots.prefix_sum(prev) + 1
            self._record(distance)
            self._slots.add(prev, -1)
        self._slots.add(slot, 1)
        self._last_slot[line] = slot
        if (
            self.max_reservoir is not None
            and len(self._last_slot) > self.max_reservoir
        ):
            self._adapt()

    def _record(self, sampled_distance: int) -> None:
        # The reused line itself always appears in the sampled distance;
        # only the *other* distinct lines are thinned by the rate.  Scaling
        # the raw distance by 1/R would therefore bias every estimate up
        # by ~1/R lines — fatal near the resolution floor.
        scaled = (sampled_distance - 1) / self._threshold + 1.0
        index = int(np.searchsorted(self._edges, scaled, side="left"))
        self._weights[index] += 1.0 / self._threshold

    def _adapt(self) -> None:
        """Evict the largest-hash line(s); the threshold drops to their hash."""
        top_hash = -self._by_hash[0][0]
        self._threshold = top_hash
        while self._by_hash and -self._by_hash[0][0] >= self._threshold:
            __, line = heapq.heappop(self._by_hash)
            slot = self._last_slot.pop(line, None)
            if slot is not None:
                self._slots.add(slot, -1)
                self._evictions += 1

    def _compact(self) -> None:
        """Rebuild the slot tree over the surviving flags only."""
        self._compactions += 1
        survivors = sorted(
            self._last_slot.items(), key=lambda item: item[1]
        )
        capacity = self._slots.capacity
        if self.max_reservoir is None and 2 * len(survivors) > capacity:
            capacity *= 2  # unbounded mode: grow with the tracked set
        self._slots = _SlotTree(capacity)
        for new_slot, (line, __) in enumerate(survivors):
            self._slots.add(new_slot, 1)
            self._last_slot[line] = new_slot
        self._next_slot = len(survivors)

    # -- reading -------------------------------------------------------

    def curve(self) -> "ShardsCurve":
        """The current estimate as a capacity-queryable curve.

        Cheap (copies the ~400-bucket histogram); call once per control
        epoch.  Raises :class:`~repro.errors.TraceError` before any
        access has been fed — an estimate of nothing is undefined, and
        the online control loop must treat it as *unstable*, not as a
        flat curve.
        """
        if self._total_accesses == 0:
            raise TraceError("no accesses fed yet; the estimate is undefined")
        return ShardsCurve(
            edges=self._edges,
            weights=self._weights.copy(),
            cold_weight=self._cold_weight,
            num_accesses=self._total_accesses,
            sampled_accesses=self._sampled_accesses,
            cold_touches=self._cold_touches,
            rate=self._threshold,
        )


class ShardsCurve:
    """A SHARDS estimate, queryable like a miss-ratio curve.

    Mirrors the capacity surface of
    :class:`~repro.cachesim.misscurve.MissRatioCurve` (``hit_rate``,
    ``hit_rates``, ``miss_count``, ``num_accesses``, ``cold_misses``) so
    controllers can consume either.  Within the bucket straddling a
    capacity the estimate interpolates linearly; capacities that land
    exactly on a bucket edge take whole buckets, which is what makes the
    ``rate=1.0`` estimate exact there.

    Queries apply the SHARDS_adj correction: the scaled sampled mass
    (``sum(weights) + cold_weight``) should equal the true access count,
    and when the line lottery makes it deviate — a single unsampled hot
    line can carry percent-level access mass — the difference is
    credited at the smallest distance, where hot-line reuses live.
    Without it, skewed streams see tens-of-points miss-ratio error; with
    it, residual error is ordinary sampling noise (it vanishes at
    ``rate=1.0`` where the mass matches exactly).
    """

    def __init__(
        self,
        edges: np.ndarray,
        weights: np.ndarray,
        cold_weight: float,
        num_accesses: int,
        sampled_accesses: int,
        cold_touches: int,
        rate: float,
    ) -> None:
        """Freeze one estimator snapshot (built by ``Shards*.curve()``)."""
        self._edges = edges
        self._cum = np.concatenate(([0.0], np.cumsum(weights[:-1])))
        self._weights = weights
        self.cold_weight = cold_weight
        self.num_accesses = num_accesses
        self.sampled_accesses = sampled_accesses
        self.cold_touches = cold_touches
        self.rate = rate
        #: SHARDS_adj first-bucket correction: expected minus actual
        #: scaled sampled mass, credited at distance 1 by every query.
        self.adjustment = float(
            num_accesses - (float(np.sum(weights)) + cold_weight)
        )

    @property
    def distinct_lines(self) -> float:
        """Estimated distinct lines (scaled count of sampled first touches)."""
        return self.cold_weight

    @property
    def cold_misses(self) -> float:
        """Estimated first-touch accesses; they miss at every capacity."""
        return self.cold_weight

    @property
    def sampled_reuses(self) -> int:
        """Sampled reuse pairs behind the estimate (a stability signal)."""
        return self.sampled_accesses - self.cold_touches

    def _hits(self, capacities: np.ndarray) -> np.ndarray:
        caps = np.asarray(capacities, np.float64)
        if (caps <= 0).any():
            raise TraceError("capacities must be positive")
        index = np.searchsorted(self._edges, caps, side="right")
        full = self._cum[index]
        partial = np.zeros_like(caps)
        in_range = index < len(self._edges)
        if in_range.any():
            i = index[in_range]
            lower = np.where(i > 0, self._edges[i - 1], 0.0)
            upper = self._edges[i]
            fraction = np.clip(
                (caps[in_range] - lower) / (upper - lower), 0.0, 1.0
            )
            partial[in_range] = fraction * self._weights[i]
        # Every positive capacity covers distance 1, where the SHARDS_adj
        # mass is credited; clip to the physical range [0, N].
        return np.clip(
            full + partial + self.adjustment, 0.0, float(self.num_accesses)
        )

    def hit_rates(self, capacities_lines: np.ndarray | list[int]) -> np.ndarray:
        """Estimated LRU hit rates at several capacities (in lines)."""
        caps = np.atleast_1d(np.asarray(capacities_lines))
        return self._hits(caps) / self.num_accesses

    def hit_rate(self, capacity_lines: int) -> float:
        """Estimated hit rate at one capacity (in lines)."""
        return float(self.hit_rates([capacity_lines])[0])

    def miss_ratios(self, capacities_lines: np.ndarray | list[int]) -> np.ndarray:
        """Estimated miss ratios (``1 - hit_rate``) at several capacities."""
        return 1.0 - self.hit_rates(capacities_lines)

    def miss_ratio(self, capacity_lines: int) -> float:
        """Estimated miss ratio at one capacity (in lines)."""
        return 1.0 - self.hit_rate(capacity_lines)

    def miss_count(self, capacity_lines: int) -> float:
        """Estimated misses at one capacity (cold + capacity misses)."""
        return self.num_accesses - float(self._hits(np.asarray([capacity_lines]))[0])


class ShardsEnsemble:
    """Hash-replicated SHARDS: ``replicas`` independent estimators, averaged.

    A single spatial sample is at the mercy of the line lottery — one
    percent-share line straddling the capacity ladder swings the whole
    curve by ``share * sqrt(1/R)``.  Replicating the estimator under
    independent hash salts and averaging the curves cuts that noise by
    ``sqrt(replicas)`` while each member remains an honest rate-``R``
    SHARDS (the standard miniature-simulation remedy).  Memory is
    ``replicas`` times one estimator — still a small fraction of the
    exact analysis.

    The same surface as :class:`ShardsEstimator` (``feed`` / ``curve`` /
    health), with health aggregated across members.
    """

    def __init__(
        self,
        rate: float = 0.01,
        replicas: int = 8,
        max_reservoir: int | None = None,
        seed: int = 0,
    ) -> None:
        """Build ``replicas`` members with consecutive hash seeds."""
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._members = [
            ShardsEstimator(rate=rate, max_reservoir=max_reservoir, seed=seed + i)
            for i in range(replicas)
        ]

    def feed(self, lines: np.ndarray) -> None:
        """Feed a batch of cache-line ids to every member."""
        lines = np.asarray(lines)
        for member in self._members:
            member.feed(lines)

    def observe(self, line: int) -> None:
        """Feed a single cache-line access to every member."""
        self.feed(np.asarray([line], np.int64))

    def curve(self) -> ShardsCurve:
        """The replica-averaged estimate (same capacity surface).

        Averaging the member histograms is averaging the member curves
        (queries are linear in the weights up to clipping); the returned
        curve's ``sampled_accesses`` / ``cold_touches`` sum over members
        so :attr:`ShardsCurve.sampled_reuses` reflects the evidence
        behind the average.
        """
        curves = [member.curve() for member in self._members]
        first = curves[0]
        return ShardsCurve(
            edges=first._edges,
            weights=np.mean([c._weights for c in curves], axis=0),
            cold_weight=float(np.mean([c.cold_weight for c in curves])),
            num_accesses=first.num_accesses,
            sampled_accesses=sum(c.sampled_accesses for c in curves),
            cold_touches=sum(c.cold_touches for c in curves),
            rate=float(np.mean([c.rate for c in curves])),
        )

    @property
    def rate(self) -> float:
        """Mean effective sampling rate across members."""
        return float(np.mean([m.rate for m in self._members]))

    @property
    def total_accesses(self) -> int:
        """Accesses fed (every member sees the identical stream)."""
        return self._members[0].total_accesses

    @property
    def sampled_accesses(self) -> int:
        """Sampled accesses summed over members."""
        return sum(m.sampled_accesses for m in self._members)

    @property
    def reservoir_lines(self) -> int:
        """Tracked lines summed over members (the memory footprint)."""
        return sum(m.reservoir_lines for m in self._members)

    @property
    def reservoir_evictions(self) -> int:
        """Rate-adaptation evictions summed over members."""
        return sum(m.reservoir_evictions for m in self._members)


def shards_hit_rates(
    lines: np.ndarray,
    capacities_lines: np.ndarray | list[int],
    rate: float = 0.01,
    max_reservoir: int | None = None,
    seed: int = 0,
    replicas: int = 1,
) -> np.ndarray:
    """One-call SHARDS estimate over a whole trace.

    The offline convenience mirror of
    :func:`repro.cachesim.mattson.hit_rate_for_capacities` — same
    signature shape, estimated instead of exact — used by the accuracy
    gates and the ``adaptive`` experiment's estimator table.
    ``replicas > 1`` averages that many hash-replicated estimators
    (:class:`ShardsEnsemble`).
    """
    if len(lines) == 0:
        raise TraceError("hit rate of an empty stream is undefined")
    estimator: ShardsEstimator | ShardsEnsemble
    if replicas > 1:
        estimator = ShardsEnsemble(
            rate=rate, replicas=replicas, max_reservoir=max_reservoir, seed=seed
        )
    else:
        estimator = ShardsEstimator(rate=rate, max_reservoir=max_reservoir, seed=seed)
    estimator.feed(np.asarray(lines, np.int64))
    return estimator.curve().hit_rates(capacities_lines)


def curve_drift(
    previous: ShardsCurve, current: ShardsCurve, capacities_lines: np.ndarray
) -> float:
    """Largest absolute miss-ratio movement between two estimates.

    The controller's stability signal: a workload in steady state drifts
    by sampling noise only, while a phase change moves whole decades of
    the curve.  Compared at the controller's own capacity ladder so the
    signal reflects the decisions actually at stake.
    """
    if len(capacities_lines) == 0:
        raise ConfigurationError("need at least one capacity to compare at")
    previous_miss = previous.miss_ratios(capacities_lines)
    current_miss = current.miss_ratios(capacities_lines)
    return float(np.max(np.abs(previous_miss - current_miss)))


def align_to_edges(capacities_lines: np.ndarray | list[int]) -> np.ndarray:
    """Snap capacities to the estimator's bucket edges (next edge up).

    At ``rate=1.0`` the estimate is exact at edge-aligned capacities;
    validation harnesses use this to separate bucketing error from
    sampling error.
    """
    caps = np.asarray(capacities_lines, np.float64)
    if (caps <= 0).any():
        raise TraceError("capacities must be positive")
    index = np.minimum(
        np.searchsorted(DISTANCE_EDGES, caps, side="left"),
        len(DISTANCE_EDGES) - 1,
    )
    return DISTANCE_EDGES[index]
