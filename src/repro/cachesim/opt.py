"""Belady's OPT (MIN) replacement analysis.

An upper bound no practical policy can beat: evict the line whose next use
is farthest in the future.  The ablation study uses it to ask how much of
search's miss problem is *replacement policy* versus *capacity* — the
paper's design implicitly assumes capacity dominates (it attacks the
problem with a bigger cache, not a cleverer one), and OPT-vs-LRU gaps
quantify that assumption.

Implementation: one vectorized pass computes each access's next-use index;
the simulation keeps a max-heap of (next_use, line) with lazy invalidation,
giving O(n log C).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import TraceError

#: Next-use index assigned to an access whose line never recurs.
NEVER = np.iinfo(np.int64).max


def next_use_indices(lines: np.ndarray) -> np.ndarray:
    """For each access, the index of the next access to the same line.

    Vectorized via stable sort: within a line's group, each access's
    successor is the next group element.
    """
    n = len(lines)
    out = np.full(n, NEVER, np.int64)
    if n == 0:
        return out
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    positions = order.astype(np.int64)
    same_as_next = sorted_lines[:-1] == sorted_lines[1:]
    out[positions[:-1][same_as_next]] = positions[1:][same_as_next]
    return out


def simulate_opt(lines: np.ndarray, capacity_lines: int) -> np.ndarray:
    """Simulate Belady's OPT; return a boolean hit array.

    Lazy heap: stale entries (superseded next-use values) are discarded on
    pop by checking against the authoritative ``next_use`` map.
    """
    if capacity_lines <= 0:
        raise TraceError(f"capacity must be positive, got {capacity_lines}")
    n = len(lines)
    hits = np.zeros(n, bool)
    if n == 0:
        return hits
    next_use = next_use_indices(lines)

    resident_next_use: dict[int, int] = {}  # line -> authoritative next use
    heap: list[tuple[int, int]] = []  # (-next_use, line), lazy

    lines_list = lines.tolist()
    next_list = next_use.tolist()
    for i, line in enumerate(lines_list):
        future = next_list[i]
        if line in resident_next_use:
            hits[i] = True
            resident_next_use[line] = future
            heapq.heappush(heap, (-future, line))
            continue
        if len(resident_next_use) >= capacity_lines:
            while True:
                neg_use, victim = heapq.heappop(heap)
                if resident_next_use.get(victim) == -neg_use:
                    del resident_next_use[victim]
                    break
        resident_next_use[line] = future
        heapq.heappush(heap, (-future, line))
    return hits


def opt_hit_rate(lines: np.ndarray, capacity_lines: int) -> float:
    """OPT hit rate for one capacity."""
    if len(lines) == 0:
        raise TraceError("hit rate of an empty stream is undefined")
    return float(simulate_opt(lines, capacity_lines).mean())
