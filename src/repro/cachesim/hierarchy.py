"""Multi-level cache-hierarchy simulation.

Drives a trace through per-thread private L1-I/L1-D/L2 caches and a shared
L3 — the paper's simulated configuration (§III-A): "Each thread uses private
L1 caches and a private L2 cache ... We model a 40 MiB, 20-way
set-associative, unified L3 cache.  All caches use LRU."

Engines:

* ``engine="exact"`` (alias ``"reference"``) — per-access functional
  simulation using :class:`~repro.cachesim.cache.SetAssociativeCache`, with
  optional inclusive back-invalidation and optional per-level prefetchers.
* ``engine="fast"`` — the same simulation, level by level through the
  vectorized LRU kernels of :mod:`repro.cachesim.fastsim`.  Exact and
  bit-identical to ``"exact"`` whenever inclusion and prefetchers are off
  (per-level statistics are order-independent sums, so replaying each
  level's filtered stream as a batch loses nothing); an explicit ``"fast"``
  request with inclusion or prefetchers raises, ``"auto"`` falls back to
  the exact loop.
* ``engine="analytic"`` — vectorized fully-associative-LRU approximation via
  :class:`~repro.cachesim.misscurve.MissRatioCurve`, justified by the paper's
  Figure 7a (conflict misses beyond L1 under 1%).  Returns an
  :class:`AnalyticHierarchyResult` that keeps the post-L2 stream and its
  miss-ratio curve, so L3 capacity sweeps and L4 studies reuse the same pass.

For *sweeps* over many configurations of the same trace, prefer
:func:`repro.cachesim.fused.simulate_hierarchy_sweep`: it shares the
upstream L1/L2 replay across every point with the same upstream geometry
and derives whole associativity ladders from one L3 pass, bit-identical
to calling :func:`simulate_hierarchy` per point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._units import KiB, MiB
from repro.cachesim import fastsim
from repro.cachesim.cache import CacheGeometry, SetAssociativeCache
from repro.cachesim.fastsim import fast_lru_hits
from repro.cachesim.indexing import block_shift, lines_of_addrs
from repro.cachesim.misscurve import MissRatioCurve
from repro.cachesim.prefetch import PrefetcherBase
from repro.cachesim.results import HierarchyResult, LevelStats
from repro.errors import ConfigurationError, SimulationError
from repro.memtrace.trace import AccessKind, Trace


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the hierarchy: a geometry plus whether it is shared."""

    name: str
    geometry: CacheGeometry
    shared: bool = False

    def scaled(self, factor: float) -> "CacheLevelConfig":
        """Scale capacity by ``factor`` keeping associativity and block size.

        Used to run paper-scale experiments at reduced ``scale``; sizes are
        rounded to a whole number of sets.
        """
        geo = self.geometry
        new_size = max(
            geo.assoc * geo.block_size, int(geo.size * factor)
        )
        # Round down to a power-of-two set count.
        sets = max(1, new_size // (geo.assoc * geo.block_size))
        sets = 1 << (sets.bit_length() - 1)
        return replace(
            self,
            geometry=CacheGeometry(
                size=sets * geo.assoc * geo.block_size,
                assoc=geo.assoc,
                block_size=geo.block_size,
                ways_enabled=geo.ways_enabled,
            ),
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """A three-level hierarchy configuration (L4 is modeled separately).

    ``inclusive`` enables L3 inclusion with back-invalidation of L1/L2 on L3
    eviction — the property the paper notes makes CAT experiments slightly
    conservative (§IV-B).  Only supported with uniform block sizes and the
    exact engine.
    """

    l1i: CacheLevelConfig
    l1d: CacheLevelConfig
    l2: CacheLevelConfig
    l3: CacheLevelConfig | None
    inclusive: bool = False

    def __post_init__(self) -> None:
        if self.l3 is not None and not self.l3.shared:
            raise ConfigurationError("the L3 must be configured as shared")
        if self.inclusive:
            blocks = {
                level.geometry.block_size
                for level in (self.l1i, self.l1d, self.l2, self.l3)
                if level is not None
            }
            if len(blocks) != 1:
                raise ConfigurationError(
                    "inclusive simulation requires a uniform block size"
                )

    def levels(self) -> tuple[CacheLevelConfig, ...]:
        """All configured levels in lookup order."""
        base = (self.l1i, self.l1d, self.l2)
        return base + ((self.l3,) if self.l3 is not None else ())

    def with_l3_ways(self, ways: int) -> "HierarchyConfig":
        """Return a copy with CAT restricting the L3 to ``ways`` ways."""
        if self.l3 is None:
            raise ConfigurationError("hierarchy has no L3 to partition")
        return replace(
            self,
            l3=replace(self.l3, geometry=self.l3.geometry.with_ways(ways)),
        )

    def with_l3_size(self, size: int, assoc: int | None = None) -> "HierarchyConfig":
        """Return a copy with a different L3 capacity."""
        if self.l3 is None:
            raise ConfigurationError("hierarchy has no L3 to resize")
        geo = self.l3.geometry
        new_assoc = assoc if assoc is not None else geo.assoc
        return replace(
            self,
            l3=replace(
                self.l3,
                geometry=CacheGeometry(size, new_assoc, geo.block_size),
            ),
        )

    # ------------------------------------------------------------------
    # Reference platforms (Table II)
    # ------------------------------------------------------------------

    @classmethod
    def plt1_like(cls, l3_size: int = 40 * MiB, l3_assoc: int = 20) -> "HierarchyConfig":
        """The paper's simulated PLT1-like system (§III-A).

        32 KiB L1-I/L1-D and a 256 KiB unified L2 per thread, all 8-way, and
        a shared L3 (40 MiB, 20-way by default), 64-byte blocks.
        """
        return cls(
            l1i=CacheLevelConfig("L1I", CacheGeometry(32 * KiB, 8)),
            l1d=CacheLevelConfig("L1D", CacheGeometry(32 * KiB, 8)),
            l2=CacheLevelConfig("L2", CacheGeometry(256 * KiB, 8)),
            l3=CacheLevelConfig("L3", CacheGeometry(l3_size, l3_assoc), shared=True),
        )

    @classmethod
    def plt2_like(cls) -> "HierarchyConfig":
        """A POWER8-like hierarchy (Table II): 128 B blocks, 64 KiB L1-D,
        512 KiB L2, 96 MiB shared L3."""
        return cls(
            l1i=CacheLevelConfig("L1I", CacheGeometry(32 * KiB, 8, 128)),
            l1d=CacheLevelConfig("L1D", CacheGeometry(64 * KiB, 8, 128)),
            l2=CacheLevelConfig("L2", CacheGeometry(512 * KiB, 8, 128)),
            l3=CacheLevelConfig(
                "L3", CacheGeometry(96 * MiB, 8, 128), shared=True
            ),
        )

    def scaled(self, factor: float) -> "HierarchyConfig":
        """Scale every level's capacity by ``factor`` (for scaled runs)."""
        return HierarchyConfig(
            l1i=self.l1i.scaled(factor),
            l1d=self.l1d.scaled(factor),
            l2=self.l2.scaled(factor),
            l3=self.l3.scaled(factor) if self.l3 else None,
            inclusive=self.inclusive,
        )


class AnalyticHierarchyResult(HierarchyResult):
    """Hierarchy result that retains the post-L2 stream for reuse.

    ``l3_curve`` is the miss-ratio curve of the stream entering the L3:
  	calling :meth:`l3_sweep` evaluates any number of L3 capacities without
    re-simulating, and :meth:`l3_miss_stream` yields the victim stream an L4
    cache would observe at a chosen L3 capacity.
    """

    def __init__(
        self,
        levels: dict[str, LevelStats],
        instruction_count: int,
        trace: Trace,
        l3_indices: np.ndarray,
        l3_curve: MissRatioCurve | None,
        l3_block_size: int,
    ) -> None:
        super().__init__(levels=levels, instruction_count=instruction_count)
        self.trace = trace
        self.l3_indices = l3_indices
        self.l3_curve = l3_curve
        self.l3_block_size = l3_block_size

    def _require_curve(self) -> MissRatioCurve:
        if self.l3_curve is None:
            raise SimulationError("hierarchy was simulated without an L3")
        return self.l3_curve

    def l3_sweep(self, capacities_bytes: list[int]) -> dict[int, LevelStats]:
        """Per-capacity L3 stats for a capacity sweep (Figure 6b/6c)."""
        curve = self._require_curve()
        segments = self.trace.segment[self.l3_indices]
        kinds = self.trace.kind[self.l3_indices]
        out: dict[int, LevelStats] = {}
        for capacity in capacities_bytes:
            lines = max(1, capacity // self.l3_block_size)
            hits = curve.hit_mask(lines)
            stats = LevelStats(name="L3")
            stats.record_arrays(segments, kinds, hits)
            out[capacity] = stats
        return out

    def l3_miss_stream(
        self, l3_capacity_bytes: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(lines, segments, kinds) of L3 misses at the given capacity.

        This is the demand stream seen by a memory-side L4 victim cache.
        """
        curve = self._require_curve()
        lines_cap = max(1, l3_capacity_bytes // self.l3_block_size)
        miss = curve.miss_mask(lines_cap)
        idx = self.l3_indices[miss]
        lines = lines_of_addrs(self.trace.addr[idx], self.l3_block_size)
        return lines, self.trace.segment[idx], self.trace.kind[idx]


def simulate_hierarchy(
    trace: Trace,
    config: HierarchyConfig,
    engine: str = "exact",
    prefetchers: dict[str, PrefetcherBase] | None = None,
) -> HierarchyResult:
    """Simulate a trace through the hierarchy; see module docstring."""
    if len(trace) == 0:
        raise SimulationError("cannot simulate an empty trace")
    if engine in ("exact", "reference"):
        return _simulate_exact(trace, config, prefetchers or {})
    if engine == "analytic":
        if prefetchers:
            raise ConfigurationError(
                "prefetchers are only supported by the exact engine"
            )
        return _simulate_analytic(trace, config)
    if engine in ("fast", "auto"):
        resolved = fastsim.resolve_engine(
            engine, fast_supported=not config.inclusive and not prefetchers
        )
        if resolved == "fast":
            return _simulate_fast(trace, config)
        return _simulate_exact(trace, config, prefetchers or {})
    raise ConfigurationError(f"unknown engine {engine!r}")


# ----------------------------------------------------------------------
# Exact engine
# ----------------------------------------------------------------------


def _shift(geometry: CacheGeometry) -> int:
    return block_shift(geometry.block_size)


def _simulate_exact(
    trace: Trace,
    config: HierarchyConfig,
    prefetchers: dict[str, PrefetcherBase],
) -> HierarchyResult:
    unknown = set(prefetchers) - {"L1I", "L1D", "L2", "L3"}
    if unknown:
        raise ConfigurationError(f"prefetchers for unknown levels: {unknown}")

    threads = trace.thread_ids()
    l1i = {t: SetAssociativeCache(config.l1i.geometry) for t in threads}
    l1d = {t: SetAssociativeCache(config.l1d.geometry) for t in threads}
    l2 = {t: SetAssociativeCache(config.l2.geometry) for t in threads}
    l3 = SetAssociativeCache(config.l3.geometry) if config.l3 else None

    stats = {
        name: LevelStats(name=name)
        for name in ("L1I", "L1D", "L2") + (("L3",) if l3 else ())
    }
    s1 = _shift(config.l1i.geometry)
    s1d = _shift(config.l1d.geometry)
    s2 = _shift(config.l2.geometry)
    s3 = _shift(config.l3.geometry) if config.l3 else 0

    addr_list = trace.addr.tolist()
    kind_list = trace.kind.tolist()
    seg_list = trace.segment.tolist()
    thr_list = trace.thread.tolist()
    instr = int(AccessKind.INSTR)
    inclusive = config.inclusive

    pf = {name: prefetchers.get(name) for name in ("L1I", "L1D", "L2", "L3")}

    for addr, kind, seg, thr in zip(addr_list, kind_list, seg_list, thr_list):
        if kind == instr:
            cache, shift, name = l1i[thr], s1, "L1I"
        else:
            cache, shift, name = l1d[thr], s1d, "L1D"
        line = addr >> shift
        hit, __ = cache.access(line)
        stats[name].record(seg, kind, hit)
        if hit:
            continue
        pf1 = pf[name]
        if pf1 is not None:
            for p in pf1.on_miss(line):
                cache.fill(p)

        line2 = addr >> s2
        hit, __ = l2[thr].access(line2)
        stats["L2"].record(seg, kind, hit)
        if not hit and pf["L2"] is not None:
            for p in pf["L2"].on_miss(line2):
                l2[thr].fill(p)
        if hit or l3 is None:
            continue

        line3 = addr >> s3
        hit, victim = l3.access(line3)
        stats["L3"].record(seg, kind, hit)
        if not hit and pf["L3"] is not None:
            for p in pf["L3"].on_miss(line3):
                l3.fill(p)
        if inclusive and victim is not None:
            # Back-invalidate the evicted line everywhere above the L3.
            for caches in (l1i, l1d, l2):
                for c in caches.values():
                    c.invalidate(victim)

    return HierarchyResult(levels=stats, instruction_count=trace.instruction_count)


# ----------------------------------------------------------------------
# Fast engine (vectorized exact)
# ----------------------------------------------------------------------


def _fast_level_pass(
    trace: Trace,
    indices: np.ndarray,
    geometry: CacheGeometry,
    stats: LevelStats,
) -> np.ndarray:
    """Run one level through the vectorized LRU kernel; return miss indices."""
    lines = lines_of_addrs(trace.addr[indices], geometry.block_size)
    hits = fast_lru_hits(lines, geometry.num_sets, geometry.effective_ways)
    stats.record_arrays(trace.segment[indices], trace.kind[indices], hits)
    return indices[~hits]


def _simulate_fast(trace: Trace, config: HierarchyConfig) -> HierarchyResult:
    """Exact hierarchy simulation, one vectorized batch per cache level.

    Each private cache sees exactly the subsequence of accesses the exact
    loop would feed it (its thread's stream filtered by the level above),
    and the shared L3 sees the program-order merge of every thread's L2
    misses, so each level's hit mask — and therefore every LevelStats
    count, which is an order-independent sum — matches ``_simulate_exact``
    exactly.  Only valid without inclusion and prefetchers (the caller
    guarantees this via :func:`repro.cachesim.fastsim.resolve_engine`).
    """
    stats = {
        name: LevelStats(name=name)
        for name in ("L1I", "L1D", "L2") + (("L3",) if config.l3 else ())
    }
    is_instr = trace.kind == AccessKind.INSTR

    l2_parts: list[np.ndarray] = []
    for t in trace.thread_ids():
        of_thread = trace.thread == np.uint16(t)
        instr_idx = np.flatnonzero(of_thread & is_instr)
        data_idx = np.flatnonzero(of_thread & ~is_instr)
        misses: list[np.ndarray] = []
        if len(instr_idx):
            misses.append(
                _fast_level_pass(trace, instr_idx, config.l1i.geometry, stats["L1I"])
            )
        if len(data_idx):
            misses.append(
                _fast_level_pass(trace, data_idx, config.l1d.geometry, stats["L1D"])
            )
        if not misses:
            continue
        l2_in = np.sort(np.concatenate(misses))
        if len(l2_in):
            l2_parts.append(
                _fast_level_pass(trace, l2_in, config.l2.geometry, stats["L2"])
            )

    if config.l3 is not None and l2_parts:
        l3_idx = np.sort(np.concatenate(l2_parts))
        if len(l3_idx):
            _fast_level_pass(trace, l3_idx, config.l3.geometry, stats["L3"])

    return HierarchyResult(levels=stats, instruction_count=trace.instruction_count)


# ----------------------------------------------------------------------
# Analytic engine
# ----------------------------------------------------------------------


def _level_pass(
    trace: Trace,
    indices: np.ndarray,
    geometry: CacheGeometry,
    stats: LevelStats,
) -> np.ndarray:
    """Run one cache level analytically; return the miss indices."""
    lines = lines_of_addrs(trace.addr[indices], geometry.block_size)
    curve = MissRatioCurve(lines)
    hits = curve.hit_mask(geometry.capacity_lines)
    stats.record_arrays(trace.segment[indices], trace.kind[indices], hits)
    return indices[~hits]


def _simulate_analytic(trace: Trace, config: HierarchyConfig) -> HierarchyResult:
    stats = {
        name: LevelStats(name=name)
        for name in ("L1I", "L1D", "L2") + (("L3",) if config.l3 else ())
    }
    is_instr = trace.kind == AccessKind.INSTR

    l2_parts: list[np.ndarray] = []
    for t in trace.thread_ids():
        of_thread = trace.thread == np.uint16(t)
        instr_idx = np.flatnonzero(of_thread & is_instr)
        data_idx = np.flatnonzero(of_thread & ~is_instr)
        misses: list[np.ndarray] = []
        if len(instr_idx):
            misses.append(
                _level_pass(trace, instr_idx, config.l1i.geometry, stats["L1I"])
            )
        if len(data_idx):
            misses.append(
                _level_pass(trace, data_idx, config.l1d.geometry, stats["L1D"])
            )
        if not misses:
            continue
        l2_in = np.sort(np.concatenate(misses))
        if len(l2_in):
            l2_parts.append(
                _level_pass(trace, l2_in, config.l2.geometry, stats["L2"])
            )

    l3_idx = (
        np.sort(np.concatenate(l2_parts)) if l2_parts else np.empty(0, np.int64)
    )
    l3_curve = None
    l3_block = 64
    if config.l3 is not None and len(l3_idx):
        geo = config.l3.geometry
        l3_block = geo.block_size
        lines = lines_of_addrs(trace.addr[l3_idx], geo.block_size)
        l3_curve = MissRatioCurve(lines)
        hits = l3_curve.hit_mask(geo.capacity_lines)
        stats["L3"].record_arrays(
            trace.segment[l3_idx], trace.kind[l3_idx], hits
        )

    return AnalyticHierarchyResult(
        levels=stats,
        instruction_count=trace.instruction_count,
        trace=trace,
        l3_indices=l3_idx,
        l3_curve=l3_curve,
        l3_block_size=l3_block,
    )
