"""Shared-cache composition of concurrent access streams.

**Why this exists.**  The paper's traces cover 135 *billion* instructions
because production rates are extreme: code touches ~100 cache lines per
kilo-instruction while the heap and shard touch only a handful — yet the
heap's working set is a gigabyte.  A flat trace long enough to expose the
heap curve at realistic rates is unsimulatable in Python.  Footprint theory
solves this compositionally (Xiang et al., HOTL, ASPLOS'13): each stream's
locality is measured once on its *own* densely-generated trace, and the
shared cache is modeled by solving, for a capacity C, the global time
window W at which the combined footprints fill the cache:

    sum_i  k_i * fp_i(r_i * W)  =  C

where ``r_i`` is stream i's access rate (per kilo-instruction), ``k_i`` its
multiplicity (identical private instances, e.g. per-thread stacks), and
``fp_i`` its average-footprint function.  A reuse by stream i then hits iff
its own-stream reuse time is at most ``r_i * W``.

This also makes thread scaling nearly free: threads drawing i.i.d. from the
same shared distribution (heap objects, shard terms, code) compose as a
single stream at T-times the rate, while private segments compose with
multiplicity T.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cachesim.misscurve import MissRatioCurve
from repro.errors import ConfigurationError, TraceError


@dataclass
class StreamComponent:
    """One access stream entering a shared cache.

    Parameters
    ----------
    name:
        Identifier used to retrieve per-stream results.
    lines:
        The stream's line addresses in its own program order.
    rate:
        Accesses per kilo-instruction contributed to the global interleave.
    multiplicity:
        Number of identical, mutually-private instances of this stream
        (per-thread stacks); footprint scales by it, hit rates do not.
    curve:
        Optional precomputed miss-ratio curve of ``lines``.  Curve
        construction dominates composed-hierarchy cost, so callers that
        already hold an equivalent curve — a rate rescale of the same
        stream, or a :meth:`~repro.cachesim.misscurve.MissRatioCurve.filtered`
        derivation of the parent level's curve — pass it through instead
        of rebuilding.  Omitted, the curve is built from ``lines``; either
        way the curve state is bit-identical.
    """

    name: str
    lines: np.ndarray
    rate: float
    multiplicity: int = 1
    curve: MissRatioCurve | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate of {self.name!r} must be positive")
        if self.multiplicity < 1:
            raise ConfigurationError(
                f"multiplicity of {self.name!r} must be >= 1"
            )
        if len(self.lines) == 0:
            raise TraceError(f"stream {self.name!r} is empty")
        if self.curve is None:
            self.curve = MissRatioCurve(self.lines)

    @property
    def total_rate(self) -> float:
        """Aggregate rate including multiplicity."""
        return self.rate * self.multiplicity

    def scaled_rate(self, factor: float) -> "StreamComponent":
        """Same stream at a different rate (e.g. T threads sharing it).

        The miss-ratio curve depends only on the line stream, so the
        rescaled component shares this one's curve instead of rebuilding.
        """
        return StreamComponent(
            name=self.name,
            lines=self.lines,
            rate=self.rate * factor,
            multiplicity=self.multiplicity,
            curve=self.curve,
        )


def solve_windows(
    components: list[StreamComponent],
    capacities_lines: np.ndarray | list[int],
) -> np.ndarray:
    """Solve the composition window for many capacities in lockstep.

    The vectorized counterpart of :meth:`CompositeCache._solve_window`:
    every capacity follows exactly the scalar bisection recurrence (same
    full-fit early-out, same 60 midpoint steps, same float64 arithmetic,
    components accumulated in the same order), so each solved window is
    bit-identical to a scalar solve at that capacity.
    """
    if not components:
        raise ConfigurationError("need at least one stream component")
    caps = np.asarray(capacities_lines, np.float64)
    if len(caps) == 0:
        return np.empty(0, np.float64)
    max_window = max(len(c.lines) / c.rate for c in components)

    def combined(windows: np.ndarray) -> np.ndarray:
        total: np.ndarray | None = None
        for c in components:
            term = c.multiplicity * c.curve.footprints_clamped(c.rate * windows)
            total = term if total is None else total + term
        assert total is not None
        return total

    fits = combined(np.full(caps.shape, max_window)) <= caps
    lo = np.zeros(caps.shape, np.float64)
    hi = np.full(caps.shape, max_window, np.float64)
    for __ in range(60):
        mid = (lo + hi) / 2.0
        le = combined(mid) <= caps
        lo = np.where(le, mid, lo)
        hi = np.where(le, hi, mid)
    return np.where(fits, max_window, lo)


class CompositeCache:
    """A shared LRU cache serving several concurrent streams.

    ``engine`` selects the window solver: ``"reference"`` is the scalar
    bisection, ``"fast"``/``"auto"`` route through the lockstep batch
    solver :func:`solve_windows` (bit-identical by construction).

    ``window`` injects a pre-solved residency window (kilo-instructions),
    skipping the solve entirely — :meth:`repro.cachesim.composed.\
ComposedHierarchy.solve_l3_sweep` solves a whole capacity ladder in one
    lockstep pass and builds each cache this way.  The injected value must
    come from :func:`solve_windows` over the same components, which makes
    it bit-identical to what the in-constructor solve would produce.

    ``fused`` (fast engine only) lets :meth:`miss_component` derive the
    miss stream's curve from the parent curve via
    :meth:`~repro.cachesim.misscurve.MissRatioCurve.filtered` instead of
    rebuilding it — same numbers, a fraction of the cost.  Pass ``False``
    to benchmark the unfused construction path.
    """

    def __init__(
        self,
        components: list[StreamComponent],
        capacity_lines: int,
        engine: str = "reference",
        *,
        window: float | None = None,
        fused: bool = True,
    ) -> None:
        from repro.cachesim import fastsim

        if not components:
            raise ConfigurationError("need at least one stream component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate stream names: {names}")
        if capacity_lines <= 0:
            raise ConfigurationError("capacity_lines must be positive")
        self.components = {c.name: c for c in components}
        self.capacity_lines = capacity_lines
        self.engine = engine
        self._fast = fastsim.resolve_engine(engine) == "fast"
        self._fused = fused
        if window is not None:
            self._window = float(window)
        elif self._fast:
            self._window = float(
                solve_windows(components, [capacity_lines])[0]
            )
        else:
            self._window = self._solve_window()

    # ------------------------------------------------------------------

    def _combined_footprint(self, window_ki: float) -> float:
        """Sum of per-stream footprints over a global window (in KI)."""
        return sum(
            c.multiplicity * c.curve.footprint_clamped(c.rate * window_ki)
            for c in self.components.values()
        )

    def _solve_window(self) -> float:
        """Largest global window (KI) whose combined footprint fits."""
        capacity = float(self.capacity_lines)
        if self._combined_footprint(self._max_window()) <= capacity:
            return self._max_window()
        lo, hi = 0.0, self._max_window()
        # ~60 bisection steps pin the window to full float precision.
        for __ in range(60):
            mid = (lo + hi) / 2.0
            if self._combined_footprint(mid) <= capacity:
                lo = mid
            else:
                hi = mid
        return lo

    def _max_window(self) -> float:
        return max(
            len(c.lines) / c.rate for c in self.components.values()
        )

    # ------------------------------------------------------------------

    @property
    def global_window_ki(self) -> float:
        """The solved residency window, in kilo-instructions."""
        return self._window

    def _component(self, name: str) -> StreamComponent:
        try:
            return self.components[name]
        except KeyError:
            raise ConfigurationError(
                f"no stream named {name!r}; have {sorted(self.components)}"
            ) from None

    def own_window(self, name: str) -> float:
        """The residency window expressed in stream ``name``'s accesses."""
        return self._component(name).rate * self._window

    def hit_rate(self, name: str) -> float:
        """Hit rate of one stream in the shared cache."""
        component = self._component(name)
        return component.curve.hit_rate_for_window(self.own_window(name))

    def hit_mask(self, name: str) -> np.ndarray:
        """Per-access hit mask of one stream."""
        component = self._component(name)
        return component.curve.hit_mask_for_window(self.own_window(name))

    def miss_component(self, name: str) -> StreamComponent | None:
        """The stream of this component's misses, with its demoted rate.

        Returns None when the stream misses too rarely to carry meaningful
        statistics downstream (fewer than 2 miss accesses).
        """
        component = self._component(name)
        miss_mask = ~self.hit_mask(name)
        miss_lines = component.lines[miss_mask]
        if len(miss_lines) < 2:
            return None
        miss_fraction = len(miss_lines) / len(component.lines)
        assert component.curve is not None  # established in __post_init__
        curve = (
            component.curve.filtered(miss_mask)
            if self._fast and self._fused
            else None
        )
        return StreamComponent(
            name=name,
            lines=miss_lines,
            rate=component.rate * miss_fraction,
            multiplicity=component.multiplicity,
            curve=curve,
        )

    def mpki(self, name: str) -> float:
        """Misses per kilo-instruction of one stream (incl. multiplicity)."""
        component = self._component(name)
        return component.total_rate * (1.0 - self.hit_rate(name))

    def total_mpki(self) -> float:
        """Combined MPKI over all streams."""
        return sum(self.mpki(name) for name in self.components)


def merge_streams_by_rate(
    components: list[StreamComponent],
    rng: np.random.Generator,
    minor_rate_fraction: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Interleave several streams into one global order by their rates.

    Returns ``(lines, component_index)``.  The streams were generated with
    independent lengths, so each is truncated to the number of events its
    rate contributes over a common instruction span; each stream keeps its
    internal order while the cross-stream ordering is a proportionate
    random shuffle.  Used to build the L4's demand stream from per-segment
    L3 miss streams.

    The span is set by the *major* streams: components that together carry
    at most ``minor_rate_fraction`` of the total rate may be shorter than
    the span requires — they are included in full and end up somewhat
    under-represented, which is harmless for the direct-mapped L4 study
    (their events only perturb set conflicts).  Without this, one short
    minor stream (e.g. the nearly-empty code miss stream) would truncate
    every other stream to its own tiny span and destroy their reuse.
    """
    if not components:
        raise ConfigurationError("need at least one stream to merge")
    if not 0 <= minor_rate_fraction < 1:
        raise ConfigurationError("minor_rate_fraction must be in [0, 1)")
    total_rate = sum(c.rate for c in components)
    # Walk candidate spans from shortest stream up; streams shorter than
    # the candidate span are "minor" and must stay under the rate budget.
    by_span = sorted(components, key=lambda c: len(c.lines) / c.rate)
    span_ki = len(by_span[0].lines) / by_span[0].rate
    minor_rate = 0.0
    for position, component in enumerate(by_span[:-1]):
        if (minor_rate + component.rate) / total_rate > minor_rate_fraction:
            break
        minor_rate += component.rate
        successor = by_span[position + 1]
        span_ki = len(successor.lines) / successor.rate

    counts = [
        max(1, min(len(c.lines), int(c.rate * span_ki))) for c in components
    ]
    truncated = [c.lines[:count] for c, count in zip(components, counts)]
    total = sum(counts)
    tags = np.concatenate(
        [np.full(count, i, np.int32) for i, count in enumerate(counts)]
    )
    rng.shuffle(tags)
    lines = np.empty(total, np.int64)
    for i, lines_i in enumerate(truncated):
        lines[tags == i] = lines_i
    return lines, tags
