"""Retry and hedged-request policies for the aggregation tree.

Aggregators in a deadline-bound serving tree do not simply wait for every
child: they retry transient failures, hedge slow RPCs with a duplicate
request, and budget a fixed aggregation overhead per tree level (the
"tail at scale" playbook).  These policies are plain configuration — the
mechanics live in :meth:`repro.search.root.RootServer.search` and the
randomness in :class:`repro.search.faults.FaultInjector`, so a policy
object stays reusable across runs and trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget for transient leaf failures.

    ``max_attempts`` counts the initial try; ``backoff_ms`` is the pause
    between attempts (simulated, added to the leaf's completion time).
    Hard failures are never retried — a fail-stopped leaf cannot answer.
    """

    max_attempts: int = 2
    backoff_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ms < 0:
            raise ConfigurationError(f"backoff_ms must be >= 0, got {self.backoff_ms}")

    def as_tags(self) -> dict[str, object]:
        """Span tags describing this policy (``retry_`` prefixed)."""
        return {
            "retry_max_attempts": self.max_attempts,
            "retry_backoff_ms": self.backoff_ms,
        }


@dataclass(frozen=True)
class HedgePolicy:
    """Duplicate a leaf RPC that has not answered after ``after_ms``.

    The hedged pair completes at ``min(first, after_ms + second)`` — the
    classic tail-cutting trade: a small amount of duplicate work buys a
    bounded p99.  Only latency is hedged; a transient error on the hedge
    simply forfeits the hedge.
    """

    after_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.after_ms <= 0:
            raise ConfigurationError(f"after_ms must be positive, got {self.after_ms}")

    def as_tags(self) -> dict[str, object]:
        """Span tags describing this policy (``hedge_`` prefixed)."""
        return {"hedge_after_ms": self.after_ms}


@dataclass(frozen=True)
class ServingPolicy:
    """Everything an aggregator level needs to know about robustness."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: None disables hedging.
    hedge: HedgePolicy | None = None
    #: Fixed merge/network cost added per aggregation level, matching
    #: :class:`repro.search.latency.QueryLatencyModel.overhead_ms`.
    overhead_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.overhead_ms < 0:
            raise ConfigurationError(
                f"overhead_ms must be >= 0, got {self.overhead_ms}"
            )

    def as_tags(self) -> dict[str, object]:
        """Span tags describing the full policy (flat, prefix-namespaced)."""
        tags: dict[str, object] = {"overhead_ms": self.overhead_ms}
        tags.update(self.retry.as_tags())
        if self.hedge is not None:
            tags.update(self.hedge.as_tags())
        return tags
