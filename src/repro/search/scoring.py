"""BM25 ranking.

The scoring function the leaf applies while traversing postings.  Kept
deliberately standard (Robertson/Sparck-Jones BM25) — the paper's point is
the *memory behaviour* of scoring, not the ranking function itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Bm25Parameters:
    """Standard BM25 free parameters."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0 or not 0 <= self.b <= 1:
            raise ConfigurationError(
                f"invalid BM25 parameters k1={self.k1}, b={self.b}"
            )


def idf(total_docs: int, doc_frequency: int) -> float:
    """BM25 inverse document frequency with the +0.5 smoothing."""
    if total_docs <= 0 or doc_frequency <= 0 or doc_frequency > total_docs:
        raise ConfigurationError(
            f"invalid df={doc_frequency} for N={total_docs}"
        )
    return math.log(1.0 + (total_docs - doc_frequency + 0.5) / (doc_frequency + 0.5))


def bm25_score(
    frequencies: np.ndarray,
    doc_lengths: np.ndarray,
    average_length: float,
    total_docs: int,
    doc_frequency: int,
    params: Bm25Parameters = Bm25Parameters(),
) -> np.ndarray:
    """Vectorized BM25 term score for a batch of candidate documents."""
    if average_length <= 0:
        raise ConfigurationError("average_length must be positive")
    tf = np.asarray(frequencies, np.float64)
    dl = np.asarray(doc_lengths, np.float64)
    term_idf = idf(total_docs, doc_frequency)
    denom = tf + params.k1 * (1.0 - params.b + params.b * dl / average_length)
    return term_idf * (tf * (params.k1 + 1.0)) / denom
