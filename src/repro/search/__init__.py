"""A functional mini web-search serving system (the paper's Figure 1).

This package is the workload substrate: a synthetic corpus, an inverted-
index builder producing var-byte-compressed, sharded posting lists, BM25
scoring, and the serving tree — front-end with result caches, root with
snippet generation, and leaf servers that score their index shard.

Every index and runtime structure lives in a simulated address space
(:mod:`repro.search.simmem`), and leaf query execution emits a labelled
memory trace — code, heap, shard, stack — that feeds the same cache
simulators as the calibrated synthetic generators.  This is the honest
stand-in for the paper's Pin traces of production search.
"""

from repro.search.documents import Corpus, CorpusConfig, Document, Vocabulary
from repro.search.tokenizer import tokenize
from repro.search.postings import PostingList, decode_postings, encode_postings
from repro.search.scoring import Bm25Parameters, bm25_score
from repro.search.indexer import IndexShard, InvertedIndexBuilder
from repro.search.latency import LatencyAccumulator, QueryLatencyModel
from repro.search.faults import FaultInjector, FaultSpec, SimulatedClock
from repro.search.policies import HedgePolicy, RetryPolicy, ServingPolicy
from repro.search.serialization import shard_from_bytes, shard_to_bytes
from repro.search.simmem import SimulatedMemory, TraceRecorder
from repro.search.querygen import QueryGenerator, QueryGeneratorConfig
from repro.search.leaf import LeafServer, SearchHit
from repro.search.root import RootServer, SearchResultPage
from repro.search.frontend import FrontendServer, ResultCache
from repro.search.engine import (
    CoreSpec,
    EventLoop,
    HeterogeneousPool,
    PoolStats,
    QueueConfig,
    ServingEngine,
)
from repro.search.loadgen import (
    LoadReport,
    poisson_arrival_times_ms,
    run_open_loop,
    trace_arrival_times_ms,
)
from repro.search.cluster import ClusterStats, SearchCluster

__all__ = [
    "Corpus",
    "CorpusConfig",
    "Document",
    "Vocabulary",
    "tokenize",
    "PostingList",
    "encode_postings",
    "decode_postings",
    "Bm25Parameters",
    "bm25_score",
    "IndexShard",
    "InvertedIndexBuilder",
    "SimulatedMemory",
    "TraceRecorder",
    "QueryLatencyModel",
    "LatencyAccumulator",
    "FaultInjector",
    "FaultSpec",
    "SimulatedClock",
    "RetryPolicy",
    "HedgePolicy",
    "ServingPolicy",
    "shard_to_bytes",
    "shard_from_bytes",
    "QueryGenerator",
    "QueryGeneratorConfig",
    "LeafServer",
    "SearchHit",
    "RootServer",
    "SearchResultPage",
    "FrontendServer",
    "ResultCache",
    "EventLoop",
    "QueueConfig",
    "ServingEngine",
    "CoreSpec",
    "HeterogeneousPool",
    "PoolStats",
    "LoadReport",
    "poisson_arrival_times_ms",
    "trace_arrival_times_ms",
    "run_open_loop",
    "ClusterStats",
    "SearchCluster",
]
