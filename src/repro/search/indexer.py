"""Inverted-index construction and sharding.

The indexing system of Figure 1: documents are partitioned into shards,
each shard holding var-byte posting lists for its documents plus per-doc
metadata (lengths, static rank).  When built against a
:class:`~repro.search.simmem.SimulatedMemory`, posting blobs are placed in
the read-only **shard** segment and metadata in the **heap** segment —
exactly the placement the paper attributes misses to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.memtrace.trace import Segment
from repro.search.documents import Corpus, Document
from repro.search.postings import PostingList, encode_postings
from repro.search.simmem import SimulatedMemory


@dataclass
class IndexShard:
    """One shard: posting lists over a disjoint subset of documents."""

    shard_id: int
    postings: dict[int, PostingList]
    #: Global doc id of each shard-local document.
    doc_ids: np.ndarray
    doc_lengths: np.ndarray
    static_rank: np.ndarray
    average_length: float
    total_docs: int
    #: Simulated heap addresses of the metadata arrays (-1 if unplaced).
    doc_length_addr: int = -1
    static_rank_addr: int = -1

    def __post_init__(self) -> None:
        if len(self.doc_ids) != len(self.doc_lengths):
            raise ConfigurationError("doc_ids and doc_lengths must align")

    @property
    def num_docs(self) -> int:
        return len(self.doc_ids)

    @property
    def shard_bytes(self) -> int:
        """Total compressed posting bytes in this shard."""
        return sum(p.size_bytes for p in self.postings.values())

    def local_index_of(self) -> dict[int, int]:
        """Map global doc id -> shard-local index."""
        return {int(d): i for i, d in enumerate(self.doc_ids)}


class InvertedIndexBuilder:
    """Builds document-sharded inverted indexes.

    Documents are assigned to shards round-robin by doc id, the standard
    document partitioning of web-search serving systems (each leaf owns a
    shard and scores it independently, §II-A).
    """

    def __init__(self, num_shards: int = 1) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._docs: list[list[Document]] = [[] for _ in range(num_shards)]
        self._total_docs = 0
        self._total_terms = 0

    def add(self, document: Document) -> None:
        """Route one document to its shard."""
        self._docs[document.doc_id % self.num_shards].append(document)
        self._total_docs += 1
        self._total_terms += document.length

    def add_corpus(self, corpus: Corpus) -> None:
        """Add every document of a corpus."""
        for document in corpus:
            self.add(document)

    # ------------------------------------------------------------------

    def build(
        self, memory: SimulatedMemory | None = None, seed: int = 0
    ) -> list[IndexShard]:
        """Build all shards, optionally placing them in simulated memory."""
        if self._total_docs == 0:
            raise ConfigurationError("no documents added")
        average_length = self._total_terms / self._total_docs
        rng = np.random.default_rng(seed)
        return [
            self._build_shard(shard_id, average_length, memory, rng)
            for shard_id in range(self.num_shards)
        ]

    def _build_shard(
        self,
        shard_id: int,
        average_length: float,
        memory: SimulatedMemory | None,
        rng: np.random.Generator,
    ) -> IndexShard:
        docs = sorted(self._docs[shard_id], key=lambda d: d.doc_id)
        if not docs:
            raise ConfigurationError(f"shard {shard_id} received no documents")
        term_docs: dict[int, list[int]] = {}
        term_freqs: dict[int, list[int]] = {}
        doc_ids = np.array([d.doc_id for d in docs], np.int64)
        doc_lengths = np.array([d.length for d in docs], np.int64)

        for local, doc in enumerate(docs):
            terms, counts = np.unique(doc.terms, return_counts=True)
            for term, count in zip(terms.tolist(), counts.tolist()):
                term_docs.setdefault(term, []).append(local)
                term_freqs.setdefault(term, []).append(count)

        postings: dict[int, PostingList] = {}
        for term in sorted(term_docs):
            locals_ = np.asarray(term_docs[term], np.int64)
            freqs = np.asarray(term_freqs[term], np.int64)
            blob = encode_postings(locals_, freqs)
            addr = -1
            if memory is not None:
                addr = memory.alloc(
                    Segment.SHARD, max(1, len(blob)), label=f"postings:{term}"
                )
            postings[term] = PostingList(
                term_id=term,
                doc_count=len(locals_),
                blob=blob,
                shard_addr=addr,
            )

        static_rank = rng.random(len(docs))
        doc_length_addr = -1
        static_rank_addr = -1
        if memory is not None:
            doc_length_addr = memory.alloc(
                Segment.HEAP, 8 * len(docs), label=f"shard{shard_id}:doc_lengths"
            )
            static_rank_addr = memory.alloc(
                Segment.HEAP, 8 * len(docs), label=f"shard{shard_id}:static_rank"
            )

        return IndexShard(
            shard_id=shard_id,
            postings=postings,
            doc_ids=doc_ids,
            doc_lengths=doc_lengths,
            static_rank=static_rank,
            average_length=average_length,
            total_docs=self._total_docs,
            doc_length_addr=doc_length_addr,
            static_rank_addr=static_rank_addr,
        )
