"""Simulated-clock fault injection for the serving tree.

The paper's serving hierarchy (Figure 1) runs under a strict latency SLO,
and §IV-B re-checks tail latency after rebalancing.  Real serving trees
meet that SLO *despite* misbehaving leaves: queueing spikes, transient
RPC errors, and fail-stop machine losses are the steady state at fleet
scale.  This module is the substrate that lets the simulated tree exhibit
those behaviours deterministically:

* :class:`SimulatedClock` — a manually advanced millisecond clock, so the
  serving path never reads wall-clock time (RPR102) and every run is
  replayable.
* :class:`FaultSpec` — per-leaf-call probabilities of latency spikes,
  transient errors, and fail-stop deaths, plus the queueing utilization
  the healthy latency draws are conditioned on.
* :class:`FaultInjector` — the seeded sampler the aggregators consult
  before every leaf RPC.  Healthy calls draw an M/M/1 sojourn time from
  :class:`~repro.search.latency.QueryLatencyModel`; faulty ones raise
  :class:`~repro.errors.LeafUnavailableError` with the simulated time the
  caller lost before learning of the failure.

Every draw consumes the same number of random variates regardless of the
configured rates, so runs at different fault rates are *coupled*: the
underlying latency stream is identical and only the fault classification
changes.  That is what makes the SLO experiment's sweeps smooth at modest
query counts.

Draws come in two flavours.  The legacy *shared-stream* draws consume
variates in call order from one generator — fine for a single
synchronous call tree, but any reordering (an event loop interleaving
leaf RPCs of overlapping queries) silently re-deals every fault.  The
*keyed* draws instead derive an independent generator per
``(leaf, query, attempt)`` from a stable
:class:`numpy.random.SeedSequence` spawn key, so the event-driven engine
and the synchronous tree executing the same scenario see byte-identical
fault and latency sequences regardless of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, LeafUnavailableError
from repro.obs.metrics import Counter, MetricsRegistry
from repro.search.latency import QueryLatencyModel


#: Attempt-number namespace for hedged (backup) RPCs: hedge N of a leaf
#: call draws from attempt ``HEDGE_ATTEMPT_OFFSET + N``, so primaries and
#: hedges never share a keyed stream.  Shared by the synchronous tree and
#: the event-driven engine — part of what keeps their draw sequences
#: byte-identical.
HEDGE_ATTEMPT_OFFSET = 1_000


class SimulatedClock:
    """A monotonic, manually advanced clock in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ConfigurationError(f"start_ms must be >= 0, got {start_ms}")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Move time forward; returns the new time."""
        if delta_ms < 0:
            raise ConfigurationError(
                f"time cannot move backwards: delta {delta_ms}"
            )
        self._now_ms += delta_ms
        return self._now_ms


@dataclass(frozen=True)
class FaultSpec:
    """Per-leaf-call fault probabilities and severities."""

    #: Probability a healthy call's latency is multiplied by
    #: ``spike_multiplier`` (a GC pause, an antagonist, a queue burst).
    latency_spike_rate: float = 0.0
    spike_multiplier: float = 6.0
    #: Probability a call fails with a retryable error.
    transient_error_rate: float = 0.0
    #: Probability a call kills the leaf outright (fail-stop; the leaf
    #: stays dead until :meth:`FaultInjector.revive`).
    hard_failure_rate: float = 0.0
    #: Simulated time to learn of a hard failure (connection refused is
    #: fast; it is not free).
    hard_fail_detect_ms: float = 0.5
    #: Queueing utilization the healthy sojourn-time draws assume.
    utilization: float = 0.5

    def __post_init__(self) -> None:
        for name in ("latency_spike_rate", "transient_error_rate", "hard_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.spike_multiplier < 1.0:
            raise ConfigurationError(
                f"spike_multiplier must be >= 1, got {self.spike_multiplier}"
            )
        if self.hard_fail_detect_ms < 0:
            raise ConfigurationError("hard_fail_detect_ms must be >= 0")
        if not 0.0 <= self.utilization < 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1), got {self.utilization}"
            )


@dataclass(frozen=True)
class RpcDraw:
    """Classification and latency of one attempted leaf RPC.

    ``kind`` is one of ``"ok"``, ``"transient"``, ``"hard"`` (this draw
    fail-stopped the leaf), or ``"dead"`` (the leaf was already dead).
    ``latency_ms`` is the simulated time the caller loses before the
    outcome surfaces: the (possibly spiked) sojourn draw for ok and
    transient outcomes, the failure-detection time for dead leaves.
    """

    kind: str
    latency_ms: float
    spiked: bool = False

    @property
    def failed(self) -> bool:
        """True when the RPC produced no answer (any non-ok outcome)."""
        return self.kind != "ok"


class FaultInjector:
    """Samples per-RPC leaf behaviour from a :class:`FaultSpec`.

    One injector serves a whole tree; aggregators call
    :meth:`leaf_latency_ms` once per attempted leaf RPC.  The injector
    owns the run's :class:`SimulatedClock` (advanced by the front end as
    queries complete) and records when each fail-stop death happened.

    Passing a ``query_key`` (any stable non-negative int — the query's
    arrival sequence number by convention) switches a draw from the
    shared call-order stream to an independent keyed stream, making the
    draw independent of every other RPC's ordering.  The event-driven
    engine consumes the same keyed draws through :meth:`plan_rpc`.
    """

    def __init__(
        self,
        spec: FaultSpec | None = None,
        model: QueryLatencyModel | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.spec = spec or FaultSpec()
        self.model = model or QueryLatencyModel()
        self.clock = SimulatedClock()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        #: leaf_id -> simulated time of death, in arrival order.
        self.died_at_ms: dict[int, float] = {}
        # Per-instance counters: fault sweeps build one injector per
        # configuration and read its counts afterwards, so these must not
        # be shared families.  The latest injector wins the registry
        # names (replace=True) — the snapshot describes the current run.
        self._calls = Counter(
            "repro.search.faults.calls",
            help="Leaf RPC latency draws requested from the injector.",
            unit="calls",
        )
        self._spikes = Counter(
            "repro.search.faults.spikes",
            help="Healthy draws that hit a latency spike.",
            unit="calls",
        )
        self._transient_errors = Counter(
            "repro.search.faults.transient_errors",
            help="Draws that failed with a retryable error.",
            unit="calls",
        )
        self._hard_failures = Counter(
            "repro.search.faults.hard_failures",
            help="Draws that fail-stopped a leaf.",
            unit="calls",
        )
        if metrics is not None:
            for counter in (
                self._calls,
                self._spikes,
                self._transient_errors,
                self._hard_failures,
            ):
                metrics.register(counter, replace=True)

    @property
    def calls(self) -> int:
        """Total latency draws this injector has served (registry-backed)."""
        return self._calls.value

    @property
    def spikes(self) -> int:
        """Latency spikes injected so far (registry-backed)."""
        return self._spikes.value

    @property
    def transient_errors(self) -> int:
        """Transient errors injected so far (registry-backed)."""
        return self._transient_errors.value

    @property
    def hard_failures(self) -> int:
        """Fail-stop deaths injected so far (registry-backed)."""
        return self._hard_failures.value

    # ------------------------------------------------------------------

    def is_dead(self, leaf_id: int) -> bool:
        return leaf_id in self.died_at_ms

    def revive(self, leaf_id: int) -> None:
        """Bring a fail-stopped leaf back (a repair/replacement event)."""
        self.died_at_ms.pop(leaf_id, None)

    def rng_for(self, leaf_id: int, query_key: int, attempt: int = 1) -> np.random.Generator:
        """The independent generator for one ``(leaf, query, attempt)``.

        Derived from a :class:`numpy.random.SeedSequence` spawn key, so
        the stream depends only on the injector's seed and the stable
        identifiers — never on how many other draws happened first.
        """
        if query_key < 0 or attempt < 1:
            raise ConfigurationError(
                f"need query_key >= 0 and attempt >= 1, got "
                f"({query_key}, {attempt})"
            )
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(int(leaf_id), int(query_key), int(attempt))
        )
        return np.random.default_rng(sequence)

    def plan_rpc(
        self,
        leaf_id: int,
        query_key: int | None = None,
        attempt: int = 1,
        utilization: float | None = None,
    ) -> RpcDraw:
        """Draw one leaf RPC's outcome without raising.

        With a ``query_key`` the draw comes from the keyed per-
        ``(leaf, query, attempt)`` stream; without one it consumes the
        legacy shared stream in call order.  ``utilization`` overrides
        the spec's queueing utilization for the sojourn draw — the
        event-driven engine passes 0.0 because *it* supplies the waiting
        via real queues, while the synchronous tree keeps the spec's ρ
        baked into each draw.  Every call consumes exactly four variates
        of its stream, so fault rates stay coupled.

        Side effects (counters, fail-stop deaths) happen here, once per
        attempted RPC.
        """
        self._calls.inc()
        rng = (
            self._rng
            if query_key is None
            else self.rng_for(leaf_id, query_key, attempt)
        )
        rho = self.spec.utilization if utilization is None else utilization
        u_hard, u_transient, u_spike = rng.uniform(size=3)
        latency = self.model.sample_leaf_ms(rng, rho)

        if self.is_dead(leaf_id):
            return RpcDraw(kind="dead", latency_ms=self.spec.hard_fail_detect_ms)
        if u_hard < self.spec.hard_failure_rate:
            self._hard_failures.inc()
            self.died_at_ms[leaf_id] = self.clock.now_ms
            return RpcDraw(kind="hard", latency_ms=self.spec.hard_fail_detect_ms)
        if u_transient < self.spec.transient_error_rate:
            self._transient_errors.inc()
            # The error surfaces when the reply would have: full latency.
            return RpcDraw(kind="transient", latency_ms=latency)
        spiked = u_spike < self.spec.latency_spike_rate
        if spiked:
            self._spikes.inc()
            latency *= self.spec.spike_multiplier
        return RpcDraw(kind="ok", latency_ms=latency, spiked=spiked)

    def leaf_latency_ms(
        self, leaf_id: int, query_key: int | None = None, attempt: int = 1
    ) -> float:
        """The simulated latency of one leaf RPC.

        Raises :class:`LeafUnavailableError` for transient errors and for
        calls to dead (or newly dying) leaves.  Always consumes exactly
        four random variates so different fault rates share one latency
        stream; with a ``query_key`` the variates come from the stable
        keyed stream instead of shared call order.
        """
        draw = self.plan_rpc(leaf_id, query_key=query_key, attempt=attempt)
        if draw.kind in ("dead", "hard"):
            raise LeafUnavailableError(
                leaf_id, transient=False, after_ms=draw.latency_ms
            )
        if draw.kind == "transient":
            raise LeafUnavailableError(
                leaf_id, transient=True, after_ms=draw.latency_ms
            )
        return draw.latency_ms
