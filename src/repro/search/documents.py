"""Synthetic corpus generation.

Documents are bags of term ids drawn from a Zipfian vocabulary — the
statistical backbone of real text that matters for index structure: a few
frequent terms with enormous posting lists and a long tail of rare terms.
A :class:`Vocabulary` can render term ids back to deterministic synthetic
words so the full text path (tokenize → index → query) is exercisable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.memtrace.sampling import ZipfSampler

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


class Vocabulary:
    """Deterministic bidirectional mapping between term ids and words."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"vocabulary size must be positive: {size}")
        self.size = size
        self._word_cache: dict[int, str] = {}
        self._id_cache: dict[str, int] = {}

    def word(self, term_id: int) -> str:
        """Pronounceable synthetic word for a term id."""
        if not 0 <= term_id < self.size:
            raise ConfigurationError(
                f"term id {term_id} out of range [0, {self.size})"
            )
        cached = self._word_cache.get(term_id)
        if cached is not None:
            return cached
        # Base-(C*V) positional encoding gives distinct, stable words.
        n = term_id
        syllables = []
        while True:
            c = _CONSONANTS[n % len(_CONSONANTS)]
            n //= len(_CONSONANTS)
            v = _VOWELS[n % len(_VOWELS)]
            n //= len(_VOWELS)
            syllables.append(c + v)
            if n == 0:
                break
        word = "".join(syllables)
        self._word_cache[term_id] = word
        self._id_cache[word] = term_id
        return word

    def term_id(self, word: str) -> int | None:
        """Term id of a word, or None for out-of-vocabulary words."""
        if word in self._id_cache:
            return self._id_cache[word]
        # Invert the positional encoding without needing the cache.
        n = 0
        multiplier = 1
        if len(word) % 2:
            return None
        for i in range(0, len(word), 2):
            c, v = word[i], word[i + 1]
            ci = _CONSONANTS.find(c)
            vi = _VOWELS.find(v)
            if ci < 0 or vi < 0:
                return None
            n += (ci + vi * len(_CONSONANTS)) * multiplier
            multiplier *= len(_CONSONANTS) * len(_VOWELS)
        return n if 0 <= n < self.size else None


@dataclass(frozen=True)
class Document:
    """One document: an id and its term-id sequence."""

    doc_id: int
    terms: np.ndarray

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ConfigurationError("doc_id must be non-negative")

    @property
    def length(self) -> int:
        return len(self.terms)

    def text(self, vocabulary: Vocabulary) -> str:
        """Render the document as synthetic text."""
        return " ".join(vocabulary.word(int(t)) for t in self.terms)


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of a synthetic corpus."""

    num_documents: int = 10_000
    vocabulary_size: int = 50_000
    term_zipf: float = 1.05
    mean_doc_length: int = 120
    min_doc_length: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ConfigurationError("num_documents must be positive")
        if self.vocabulary_size <= 0:
            raise ConfigurationError("vocabulary_size must be positive")
        if self.min_doc_length < 1:
            raise ConfigurationError("min_doc_length must be >= 1")
        if self.mean_doc_length < self.min_doc_length:
            raise ConfigurationError(
                "mean_doc_length must be >= min_doc_length"
            )


class Corpus:
    """A generated document collection."""

    def __init__(self, config: CorpusConfig | None = None) -> None:
        self.config = config or CorpusConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        sampler = ZipfSampler(cfg.vocabulary_size, cfg.term_zipf, rng)
        lengths = np.maximum(
            cfg.min_doc_length,
            rng.poisson(cfg.mean_doc_length, cfg.num_documents),
        )
        all_terms = sampler.sample(int(lengths.sum()))
        boundaries = np.concatenate(([0], np.cumsum(lengths)))
        self.vocabulary = Vocabulary(cfg.vocabulary_size)
        self._documents = [
            Document(doc_id=i, terms=all_terms[boundaries[i] : boundaries[i + 1]])
            for i in range(cfg.num_documents)
        ]

    def __len__(self) -> int:
        return len(self._documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def __iter__(self):
        return iter(self._documents)

    @property
    def average_length(self) -> float:
        """Mean document length in terms (BM25's ``avgdl``)."""
        return float(np.mean([d.length for d in self._documents]))
