"""Index-shard serialization.

A leaf's shard is immutable once built (the serving system memory-maps it,
§II-A), which makes a flat binary image the natural interchange format:
a JSON header (term directory with offsets) followed by the concatenated
posting blobs and the metadata arrays.  This is also exactly the layout
the simulated-memory placement mirrors, so a serialized shard round-trips
losslessly.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ConfigurationError
from repro.search.indexer import IndexShard
from repro.search.postings import PostingList

_MAGIC = b"RPRSHARD"
_VERSION = 1


def shard_to_bytes(shard: IndexShard) -> bytes:
    """Serialize a shard to a flat binary image."""
    blobs = bytearray()
    directory = []
    for term in sorted(shard.postings):
        posting = shard.postings[term]
        directory.append(
            {
                "term": term,
                "doc_count": posting.doc_count,
                "offset": len(blobs),
                "length": len(posting.blob),
            }
        )
        blobs.extend(posting.blob)

    header = json.dumps(
        {
            "version": _VERSION,
            "shard_id": shard.shard_id,
            "total_docs": shard.total_docs,
            "average_length": shard.average_length,
            "num_docs": shard.num_docs,
            "directory": directory,
        }
    ).encode()

    arrays = (
        shard.doc_ids.astype(np.int64).tobytes()
        + shard.doc_lengths.astype(np.int64).tobytes()
        + shard.static_rank.astype(np.float64).tobytes()
    )
    return (
        _MAGIC
        + struct.pack("<QQ", len(header), len(blobs))
        + header
        + bytes(blobs)
        + arrays
    )


def shard_from_bytes(data: bytes) -> IndexShard:
    """Reconstruct a shard from :func:`shard_to_bytes` output."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise ConfigurationError("not a serialized shard (bad magic)")
    cursor = len(_MAGIC)
    header_len, blobs_len = struct.unpack_from("<QQ", data, cursor)
    cursor += 16
    header = json.loads(data[cursor : cursor + header_len].decode())
    cursor += header_len
    if header.get("version") != _VERSION:
        raise ConfigurationError(
            f"shard format version {header.get('version')} unsupported"
        )
    blobs = data[cursor : cursor + blobs_len]
    cursor += blobs_len

    num_docs = header["num_docs"]
    doc_ids = np.frombuffer(data, np.int64, num_docs, offset=cursor).copy()
    cursor += 8 * num_docs
    doc_lengths = np.frombuffer(data, np.int64, num_docs, offset=cursor).copy()
    cursor += 8 * num_docs
    static_rank = np.frombuffer(data, np.float64, num_docs, offset=cursor).copy()

    postings = {}
    for entry in header["directory"]:
        blob = blobs[entry["offset"] : entry["offset"] + entry["length"]]
        postings[entry["term"]] = PostingList(
            term_id=entry["term"],
            doc_count=entry["doc_count"],
            blob=bytes(blob),
        )
    return IndexShard(
        shard_id=header["shard_id"],
        postings=postings,
        doc_ids=doc_ids,
        doc_lengths=doc_lengths,
        static_rank=static_rank,
        average_length=header["average_length"],
        total_docs=header["total_docs"],
    )
