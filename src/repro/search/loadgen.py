"""Open-loop load generation for the event-driven serving engine.

The synchronous serving path is *closed-loop*: the simulated client
waits for each page before issuing the next query, so the system can
never be offered more load than it drains — overload is structurally
invisible, which is exactly the blind spot coordinated omission
describes.  This module generates **open-loop** arrivals: the schedule
is fixed up front (Poisson, or a recorded trace), queries arrive whether
or not their predecessors finished, queues grow when the servers fall
behind, and the measured p50/p99/p999 include every millisecond a query
spent waiting.

Usage::

    engine = ServingEngine(num_leaves=1, policy=ServingPolicy(overhead_ms=0.0))
    arrivals = poisson_arrival_times_ms(qps=62.5, count=20_000, seed=7)
    report = run_open_loop(engine, arrivals)
    print(report.render())

At offered loads past saturation the engine (with an admission limit)
sheds work and serves degraded pages; the report keeps counting — a
ρ > 1 run *completes*, it does not crash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.search.engine import ServingEngine
from repro.search.root import SearchResultPage


def poisson_arrival_times_ms(
    qps: float, count: int, seed: int = 0, start_ms: float = 0.0
) -> list[float]:
    """Arrival times of a Poisson process at ``qps`` queries per second.

    Inter-arrival gaps are i.i.d. exponential with mean ``1000 / qps``
    milliseconds, drawn from a generator seeded with ``seed`` — the
    schedule is a pure function of ``(qps, count, seed, start_ms)``.

    Units: the returned times (and ``start_ms``) are milliseconds of
    simulated time.
    """
    if qps <= 0:
        raise ConfigurationError(f"qps must be positive, got {qps}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if start_ms < 0:
        raise ConfigurationError(f"start_ms must be >= 0, got {start_ms}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1000.0 / qps, size=count)
    return [float(t) for t in (start_ms + np.cumsum(gaps))]


def trace_arrival_times_ms(
    inter_arrival_ms: Sequence[float], start_ms: float = 0.0
) -> list[float]:
    """Arrival times replayed from recorded inter-arrival gaps.

    Units: ``inter_arrival_ms`` gaps and ``start_ms`` are milliseconds
    of simulated time; gaps must be >= 0 (bursts are legitimate).
    """
    if not len(inter_arrival_ms):
        raise ConfigurationError("need at least one inter-arrival gap")
    arrivals: list[float] = []
    now_ms = float(start_ms)
    for gap_ms in inter_arrival_ms:
        if gap_ms < 0:
            raise ConfigurationError(
                f"inter-arrival gaps must be >= 0, got {gap_ms}"
            )
        now_ms += float(gap_ms)
        arrivals.append(now_ms)
    return arrivals


@dataclass
class LoadReport:
    """Measured outcome of one open-loop run.

    Latency quantiles are *exact* (computed from the per-query list, not
    the bucketed registry histograms), so they are safe to assert
    against closed-form queueing math.  ``offered_qps`` is derived from
    the arrival schedule; ``completed_qps`` from completions — the gap
    between them is the saturation signal.
    """

    arrivals: int = 0
    complete: int = 0
    degraded: int = 0
    failed: int = 0
    duration_ms: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    def observe(self, page: SearchResultPage) -> None:
        """Fold one finished page into the report."""
        if page.latency_ms is not None:
            self.latencies_ms.append(float(page.latency_ms))
        if page.complete:
            self.complete += 1
        elif page.leaves_answered == 0:
            self.failed += 1
        else:
            self.degraded += 1

    # ------------------------------------------------------------------

    @property
    def pages(self) -> int:
        """Pages served (complete, degraded, and failed alike)."""
        return self.complete + self.degraded + self.failed

    @property
    def degraded_rate(self) -> float:
        """Fraction of pages missing at least one leaf's results."""
        return (self.degraded + self.failed) / self.pages if self.pages else 0.0

    @property
    def offered_qps(self) -> float:
        """Arrival rate implied by the schedule."""
        if self.duration_ms <= 0:
            return 0.0
        return self.arrivals / (self.duration_ms / 1000.0)

    @property
    def completed_qps(self) -> float:
        """Completion rate actually sustained."""
        if self.duration_ms <= 0:
            return 0.0
        return self.pages / (self.duration_ms / 1000.0)

    @property
    def served_qps(self) -> float:
        """Rate of pages that carried results (failed pages excluded).

        Under overload this plateaus at the system's capacity while
        :attr:`offered_qps` keeps climbing — the saturation signature.
        Deep past saturation it legitimately reaches 0.0 (admission shed
        everything); check :attr:`starved` to tell that apart from a run
        that has not started.
        """
        if self.duration_ms <= 0:
            return 0.0
        return (self.complete + self.degraded) / (self.duration_ms / 1000.0)

    @property
    def starved(self) -> bool:
        """True when queries arrived but none produced results.

        The deep-saturation outcome: admission control shed (or every
        leaf failed) every single query, so there are no served pages
        and no latency samples.  A starved run is a legitimate sweep
        point — ``served_qps`` is 0.0 and ``mean_ms`` reports 0.0 —
        not a crash; only the latency *quantiles* stay undefined.
        """
        return self.arrivals > 0 and self.complete + self.degraded == 0

    def mean_ms(self) -> float:
        """Mean measured query latency (0.0 when no query finished).

        Returning 0.0 rather than raising keeps overload sweeps alive at
        their deepest points, where admission sheds everything and there
        are no samples to average (see :attr:`starved`).
        """
        if not self.latencies_ms:
            return 0.0
        return float(np.mean(self.latencies_ms))

    def quantile_ms(self, p: float) -> float:
        """Exact empirical p-quantile of measured query latency.

        Unlike ``mean_ms`` this keeps the typed error when nothing was
        measured: a fabricated tail quantile is worse than no number.
        """
        if not 0 < p < 1:
            raise ConfigurationError(f"p must be in (0, 1), got {p}")
        if not self.latencies_ms:
            raise ConfigurationError(
                "no latencies measured (starved run?); quantiles are "
                "undefined without samples"
            )
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, math.ceil(p * len(ordered)) - 1)
        return ordered[index]

    def p50_ms(self) -> float:
        """Measured median latency."""
        return self.quantile_ms(0.50)

    def p99_ms(self) -> float:
        """Measured 99th-percentile latency."""
        return self.quantile_ms(0.99)

    def p999_ms(self) -> float:
        """Measured 99.9th-percentile latency."""
        return self.quantile_ms(0.999)

    def render(self) -> str:
        """One human-readable summary line."""
        quantiles = (
            f"p50 {self.p50_ms():.2f} ms, p99 {self.p99_ms():.2f} ms, "
            f"p999 {self.p999_ms():.2f} ms"
            if self.latencies_ms
            else ("STARVED: no latencies" if self.starved else "no latencies")
        )
        return (
            f"{self.arrivals} arrivals at {self.offered_qps:.0f} qps -> "
            f"{self.pages} pages ({self.completed_qps:.0f} qps, "
            f"{self.degraded_rate:.1%} degraded); {quantiles}"
        )


def run_open_loop(
    engine: ServingEngine,
    arrival_times_ms: Sequence[float],
    queries: Sequence[Sequence[int]] | None = None,
    top_k: int = 10,
    deadline_ms: float | None = None,
) -> LoadReport:
    """Drive one engine through an open-loop arrival schedule.

    ``queries`` supplies per-arrival term lists (cycled when shorter
    than the schedule); None sends contentless queries — the right
    choice for pure queueing studies on an engine built without leaves.
    Query keys are the arrival sequence numbers, so the run consumes
    exactly the keyed fault/latency draws a synchronous replay would.

    Units: ``arrival_times_ms`` are absolute simulated times (sorted
    ascending); ``deadline_ms`` is each query's relative budget.
    """
    if not len(arrival_times_ms):
        raise ConfigurationError("need at least one arrival")
    report = LoadReport()
    engine.on_done(report.observe)
    previous_ms = -math.inf
    for index, arrival_ms in enumerate(arrival_times_ms):
        if arrival_ms < previous_ms:
            raise ConfigurationError(
                "arrival times must be sorted ascending; "
                f"{arrival_ms} follows {previous_ms}"
            )
        previous_ms = arrival_ms
        terms: Sequence[int] = ()
        if queries is not None and len(queries):
            terms = queries[index % len(queries)]
        engine.submit_at(
            arrival_ms,
            terms=terms,
            top_k=top_k,
            deadline_ms=deadline_ms,
        )
    report.arrivals = len(arrival_times_ms)
    engine.run()
    report.duration_ms = engine.loop.clock.now_ms - float(arrival_times_ms[0])
    return report
