"""Minimal tokenizer used on the query path.

Queries arrive as text at the front end (Figure 1); this normalizes and
splits them, then resolves words to term ids via the corpus vocabulary.
"""

from __future__ import annotations

import re

from repro.search.documents import Vocabulary

_TOKEN = re.compile(r"[a-z]+")


def tokenize(text: str) -> list[str]:
    """Lowercase and split text into alphabetic tokens."""
    return _TOKEN.findall(text.lower())


def terms_for_query(text: str, vocabulary: Vocabulary) -> list[int]:
    """Resolve a query string to in-vocabulary term ids, dropping OOV words."""
    term_ids = []
    for token in tokenize(text):
        term_id = vocabulary.term_id(token)
        if term_id is not None:
            term_ids.append(term_id)
    return term_ids
