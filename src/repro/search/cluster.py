"""The complete serving system of Figure 1, wired end to end.

``SearchCluster.build`` constructs the whole stack — corpus, sharded index
placed in simulated memory, instrumented leaf servers, an aggregation tree
with a snippet-generating root, and a caching front end.  ``serve`` pushes a
query stream through it and ``leaf_trace`` returns the interleaved memory
trace the leaves emitted, ready for the cache simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memtrace.interleave import interleave_round_robin
from repro.memtrace.trace import Trace
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.tracing import Tracer
from repro.search.documents import Corpus, CorpusConfig
from repro.search.engine import QueueConfig, ServingEngine
from repro.search.faults import FaultInjector, FaultSpec
from repro.search.frontend import FrontendServer, ResultCache
from repro.search.loadgen import (
    LoadReport,
    poisson_arrival_times_ms,
    run_open_loop,
)
from repro.search.indexer import InvertedIndexBuilder
from repro.search.latency import LatencyAccumulator, QueryLatencyModel
from repro.search.leaf import LeafServer
from repro.search.policies import ServingPolicy
from repro.search.querygen import QueryGenerator
from repro.search.root import RootServer, SearchResultPage
from repro.search.simmem import SimulatedMemory, TraceRecorder


@dataclass(frozen=True)
class ClusterStats:
    """Aggregate behaviour of one serving run."""

    queries: int
    frontend_cache_hit_rate: float
    postings_scored: int
    leaf_instructions: int
    trace_accesses: int

    def render(self) -> str:
        return (
            f"{self.queries} queries; front-end cache hit rate "
            f"{self.frontend_cache_hit_rate:.1%}; {self.postings_scored} "
            f"postings scored; {self.leaf_instructions} leaf instructions; "
            f"{self.trace_accesses} traced accesses"
        )


class SearchCluster:
    """A self-contained search serving cluster."""

    def __init__(
        self,
        corpus: Corpus,
        leaves: list[LeafServer],
        frontend: FrontendServer,
        recorders: list[TraceRecorder],
        memory: SimulatedMemory,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not leaves:
            raise ConfigurationError("cluster needs at least one leaf")
        self.corpus = corpus
        self.leaves = leaves
        self.frontend = frontend
        self.recorders = recorders
        self.memory = memory
        #: The cluster-wide registry every component publishes into
        #: (a private one when the caller did not supply any).
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        corpus_config: CorpusConfig | None = None,
        num_leaves: int = 4,
        fanout: int = 4,
        result_cache_capacity: int = 2048,
        record_traces: bool = True,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> "SearchCluster":
        """Construct the full Figure 1 stack over a fresh synthetic corpus.

        Every component publishes into one shared ``metrics`` registry (a
        private one is created when none is given — ``metrics_snapshot``
        always works); pass a ``tracer`` to record per-query span trees.
        """
        if num_leaves < 1:
            raise ConfigurationError(f"num_leaves must be >= 1, got {num_leaves}")
        registry = metrics if metrics is not None else MetricsRegistry()
        corpus = Corpus(corpus_config or CorpusConfig(seed=seed))
        builder = InvertedIndexBuilder(num_shards=num_leaves)
        builder.add_corpus(corpus)
        memory = SimulatedMemory()
        shards = builder.build(memory=memory, seed=seed)

        recorders = [
            TraceRecorder(thread_id=i, metrics=registry) if record_traces else None
            for i in range(num_leaves)
        ]
        leaves = [
            LeafServer(
                shard,
                memory=memory,
                recorder=recorders[i],
                seed=seed + i,
                metrics=registry,
            )
            for i, shard in enumerate(shards)
        ]
        root = RootServer.build_tree(leaves, fanout=fanout, metrics=registry)
        frontend = FrontendServer(
            root,
            vocabulary=corpus.vocabulary,
            cache=ResultCache(result_cache_capacity, metrics=registry),
            metrics=registry,
            tracer=tracer,
        )
        return cls(
            corpus=corpus,
            leaves=leaves,
            frontend=frontend,
            recorders=[r for r in recorders if r is not None],
            memory=memory,
            metrics=registry,
        )

    # ------------------------------------------------------------------

    def serve_terms(self, queries: list[list[int]], top_k: int = 10) -> list[SearchResultPage]:
        """Serve a stream of term-id queries through the front end."""
        return [self.frontend.search_terms(q, top_k=top_k) for q in queries]

    def serve_generated(
        self, generator: QueryGenerator, count: int, top_k: int = 10
    ) -> list[SearchResultPage]:
        """Serve ``count`` queries sampled from a generator."""
        return self.serve_terms(generator.generate(count), top_k=top_k)

    def leaf_trace(self, chunk: int = 64) -> Trace:
        """Interleaved memory trace of all leaf servers."""
        if not self.recorders:
            raise ConfigurationError("cluster was built with record_traces=False")
        traces = [r.to_trace() for r in self.recorders]
        traces = [t for t in traces if len(t)]
        if not traces:
            raise ConfigurationError("no accesses recorded yet; serve queries first")
        if len(traces) == 1:
            return traces[0]
        return interleave_round_robin(traces, chunk=chunk)

    def stats(self) -> ClusterStats:
        """Aggregate counters of the run so far.

        Counters are cumulative over the cluster's lifetime: they survive
        trace drains (``TraceRecorder.reset``), unlike the recorders'
        ``pending_accesses`` buffers.
        """
        return ClusterStats(
            queries=self.frontend.queries_received,
            frontend_cache_hit_rate=self.frontend.cache.hit_rate,
            postings_scored=sum(leaf.postings_scored for leaf in self.leaves),
            leaf_instructions=sum(r.total_instructions for r in self.recorders),
            trace_accesses=sum(r.total_accesses for r in self.recorders),
        )

    def metrics_snapshot(self, prefix: str = "") -> MetricsSnapshot:
        """A point-in-time view of every registered metric.

        ``prefix`` filters hierarchically (e.g. ``"repro.search.leaf"``);
        see :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.
        """
        return self.metrics.snapshot(prefix=prefix)

    # ------------------------------------------------------------------
    # Robust serving
    # ------------------------------------------------------------------

    def with_faults(
        self,
        spec: FaultSpec,
        policy: ServingPolicy | None = None,
        latency_model: QueryLatencyModel | None = None,
        result_cache_capacity: int = 0,
        seed: int = 0,
        tracer: Tracer | None = None,
    ) -> "SearchCluster":
        """A view of this cluster serving through a fault injector.

        Reuses the (expensive) corpus, shards, and aggregation tree but
        swaps in a fresh front end — new result cache, new injector, new
        simulated clock — so fault configurations can be swept without
        rebuilding the index and without cross-contaminating caches.
        The fresh components re-register into the shared registry
        (``replace=True``), so snapshots follow the active view while the
        superseded front end keeps its own counts.
        """
        frontend = FrontendServer(
            self.frontend.root,
            vocabulary=self.corpus.vocabulary,
            cache=ResultCache(result_cache_capacity, metrics=self.metrics),
            injector=FaultInjector(
                spec, model=latency_model, seed=seed, metrics=self.metrics
            ),
            policy=policy,
            metrics=self.metrics,
            tracer=tracer if tracer is not None else self.frontend.tracer,
        )
        return SearchCluster(
            corpus=self.corpus,
            leaves=self.leaves,
            frontend=frontend,
            recorders=self.recorders,
            memory=self.memory,
            metrics=self.metrics,
        )

    def _aggregation_levels(self) -> int:
        """Depth of the aggregation tree above the leaves."""

        def depth(node: RootServer) -> int:
            deepest = 0
            for child in node.children:
                if isinstance(child, RootServer):
                    deepest = max(deepest, depth(child))
            return 1 + deepest

        return depth(self.frontend.root)

    def with_engine(
        self,
        spec: FaultSpec | None = None,
        policy: ServingPolicy | None = None,
        latency_model: QueryLatencyModel | None = None,
        queue: QueueConfig | None = None,
        seed: int = 0,
    ) -> ServingEngine:
        """An event-driven serving engine over this cluster's leaves.

        The engine reuses the (expensive) shards and leaf servers but
        owns a fresh injector and event loop, so open-loop campaigns
        can be swept without rebuilding the index.  Its queue metrics
        (``repro.search.queue.*``) and reused fan-out counters publish
        into the cluster's shared registry.  Aggregation depth matches
        the synchronous tree's, so overhead accounting agrees.
        """
        injector = FaultInjector(
            spec if spec is not None else FaultSpec(utilization=0.0),
            model=latency_model,
            seed=seed,
            metrics=self.metrics,
        )
        return ServingEngine(
            leaves=self.leaves,
            injector=injector,
            policy=policy,
            queue=queue,
            metrics=self.metrics,
            aggregation_levels=self._aggregation_levels(),
        )

    def serve_open_loop(
        self,
        queries: list[list[int]],
        qps: float,
        top_k: int = 10,
        deadline_ms: float | None = None,
        spec: FaultSpec | None = None,
        policy: ServingPolicy | None = None,
        latency_model: QueryLatencyModel | None = None,
        queue: QueueConfig | None = None,
        seed: int = 0,
    ) -> tuple[list[SearchResultPage], LoadReport]:
        """Serve a query stream under open-loop Poisson arrivals.

        Unlike :meth:`serve_terms` (closed loop — the client waits for
        each page), arrivals here follow a fixed Poisson schedule at
        ``qps``, so the measured latencies in the returned
        :class:`~repro.search.loadgen.LoadReport` include queueing
        delay, and offered load beyond capacity shows up as degraded
        pages instead of being structurally impossible.

        Units: ``deadline_ms`` is each query's relative budget in
        simulated milliseconds.
        """
        engine = self.with_engine(
            spec=spec,
            policy=policy,
            latency_model=latency_model,
            queue=queue,
            seed=seed,
        )
        arrival_times_ms = poisson_arrival_times_ms(
            qps, len(queries), seed=seed
        )
        report = run_open_loop(
            engine,
            arrival_times_ms,
            queries=queries,
            top_k=top_k,
            deadline_ms=deadline_ms,
        )
        return engine.run(), report

    def serve_with_outcomes(
        self,
        queries: list[list[int]],
        top_k: int = 10,
        deadline_ms: float | None = None,
    ) -> tuple[list[SearchResultPage], LatencyAccumulator]:
        """Serve a query stream and accumulate per-query serving outcomes."""
        outcomes = LatencyAccumulator(metrics=self.metrics)
        pages = []
        for query in queries:
            page = self.frontend.search_terms(
                query, top_k=top_k, deadline_ms=deadline_ms
            )
            outcomes.observe(page)
            pages.append(page)
        return pages, outcomes
