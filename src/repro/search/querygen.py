"""Query-stream generation.

Search traffic has two Zipfian layers: term popularity within queries, and
query popularity across the stream (repeated queries are what the cache
servers of Figure 1 absorb).  The generator first materializes a pool of
distinct queries, then samples the stream from a Zipf over that pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memtrace.sampling import ZipfSampler


@dataclass(frozen=True)
class QueryGeneratorConfig:
    """Shape of the query stream."""

    vocabulary_size: int = 50_000
    distinct_queries: int = 5_000
    #: Popularity skew across distinct queries (drives cache-server hits).
    query_zipf: float = 0.85
    #: Term popularity within queries (flatter than corpus text).
    term_zipf: float = 0.80
    mean_terms: float = 2.4
    max_terms: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.distinct_queries <= 0 or self.vocabulary_size <= 0:
            raise ConfigurationError("pool and vocabulary sizes must be positive")
        if not 1 <= self.mean_terms <= self.max_terms:
            raise ConfigurationError("need 1 <= mean_terms <= max_terms")


class QueryGenerator:
    """Generates term-id queries with realistic repetition structure."""

    def __init__(self, config: QueryGeneratorConfig | None = None) -> None:
        self.config = config or QueryGeneratorConfig()
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        term_sampler = ZipfSampler(cfg.vocabulary_size, cfg.term_zipf, self._rng)
        lengths = np.clip(
            self._rng.geometric(1.0 / cfg.mean_terms, cfg.distinct_queries),
            1,
            cfg.max_terms,
        )
        all_terms = term_sampler.sample(int(lengths.sum()))
        bounds = np.concatenate(([0], np.cumsum(lengths)))
        self._pool = [
            all_terms[bounds[i] : bounds[i + 1]].tolist()
            for i in range(cfg.distinct_queries)
        ]
        self._query_sampler = ZipfSampler(
            cfg.distinct_queries, cfg.query_zipf, self._rng
        )

    def generate(self, count: int) -> list[list[int]]:
        """Sample ``count`` queries (term-id lists) from the pool."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        picks = self._query_sampler.sample(count)
        return [self._pool[int(p)] for p in picks]

    def pool_query(self, index: int) -> list[int]:
        """The ``index``-th distinct query (by popularity rank)."""
        return list(self._pool[index])
