"""Simulated memory: allocation and access recording for the search engine.

The paper traces production search with Pin and attributes every access to
code, heap, shard, or stack (§III-B).  Our engine gets the same attribution
by construction: index and runtime structures are *placed* in a simulated
address space by :class:`SimulatedMemory`, and the serving code records the
byte ranges it touches through a :class:`TraceRecorder`, which assembles the
numpy-backed :class:`~repro.memtrace.trace.Trace`.

:class:`LeafCacheMonitor` closes the observation side of the adaptive
control loop: it drains a recorder epoch by epoch into a streaming SHARDS
ensemble (:mod:`repro.cachesim.shards`) so each leaf carries a live
miss-ratio-curve estimate — the online counterpart of the paper's offline
Pin-trace sweeps — which :mod:`repro.search.cachectl` turns into way
partitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cachesim.shards import ShardsCurve, ShardsEnsemble, curve_drift
from repro.errors import ConfigurationError, SimulationError
from repro.memtrace.address_space import AddressSpace
from repro.memtrace.trace import AccessKind, Segment, Trace
from repro.obs.metrics import MetricsRegistry

_LINE_BYTES = 64


class SimulatedMemory:
    """Bump allocator over the segments of an :class:`AddressSpace`."""

    def __init__(self, address_space: AddressSpace | None = None) -> None:
        self.address_space = address_space or AddressSpace()
        self._cursor: dict[Segment, int] = {
            seg: self.address_space.region(seg).base
            for seg in (Segment.CODE, Segment.HEAP, Segment.SHARD)
        }
        self._labels: list[tuple[str, Segment, int, int]] = []

    def alloc(self, segment: Segment, size: int, label: str = "") -> int:
        """Reserve ``size`` bytes in a segment; return the base address.

        Allocations are 64-byte aligned so structures do not share cache
        lines by accident.
        """
        if segment == Segment.STACK:
            raise ConfigurationError(
                "stacks are per-thread; use AddressSpace.thread_stack"
            )
        if size <= 0:
            raise ConfigurationError(f"allocation size must be positive: {size}")
        aligned = -(-size // _LINE_BYTES) * _LINE_BYTES
        base = self._cursor[segment]
        region = self.address_space.region(segment)
        if base + aligned > region.end:
            raise SimulationError(
                f"segment {segment.name} exhausted: need {aligned} bytes, "
                f"{region.end - base} left"
            )
        self._cursor[segment] = base + aligned
        self._labels.append((label, segment, base, aligned))
        return base

    def used_bytes(self, segment: Segment) -> int:
        """Bytes allocated so far in a segment."""
        if segment == Segment.STACK:
            return 0
        return self._cursor[segment] - self.address_space.region(segment).base

    def allocations(self) -> list[tuple[str, Segment, int, int]]:
        """(label, segment, base, size) of every allocation, in order."""
        return list(self._labels)


class TraceRecorder:
    """Accumulates labelled accesses and assembles a :class:`Trace`.

    Ranged accesses are expanded to one access per cache line, matching the
    granularity the cache simulators care about; ``instructions`` advances
    the retired-instruction budget that MPKI is normalized by.
    """

    def __init__(
        self, thread_id: int = 0, metrics: MetricsRegistry | None = None
    ) -> None:
        self.thread_id = thread_id
        self._addr: list[np.ndarray] = []
        self._kind: list[np.ndarray] = []
        self._segment: list[np.ndarray] = []
        self._instructions = 0
        # Cumulative counters live in ``repro.mem.trace.*`` families
        # (label ``thread``): they survive :meth:`reset` by design — a
        # trace drain must not zero run-level accounting.  A private
        # registry backs them when no shared one is supplied.
        registry = metrics if metrics is not None else MetricsRegistry()
        thread_label = str(thread_id)
        self._total_accesses = registry.counter(
            "repro.mem.trace.accesses",
            help="Cache-line accesses recorded (per trace thread).",
            unit="accesses",
        ).labels(thread=thread_label)
        self._total_instructions = registry.counter(
            "repro.mem.trace.instructions",
            help="Retired instructions charged (per trace thread).",
            unit="instructions",
        ).labels(thread=thread_label)

    # ------------------------------------------------------------------

    def touch(
        self,
        addr: int,
        size: int,
        kind: AccessKind,
        segment: Segment,
    ) -> None:
        """Record an access to ``[addr, addr + size)``, one event per line."""
        if size <= 0:
            raise ConfigurationError(f"access size must be positive: {size}")
        first = addr // _LINE_BYTES
        last = (addr + size - 1) // _LINE_BYTES
        lines = np.arange(first, last + 1, dtype=np.int64) * _LINE_BYTES
        self._addr.append(lines)
        self._kind.append(np.full(len(lines), int(kind), np.uint8))
        self._segment.append(np.full(len(lines), int(segment), np.uint8))
        self._total_accesses.inc(len(lines))

    def touch_many(
        self,
        addrs: np.ndarray,
        kind: AccessKind,
        segment: Segment,
    ) -> None:
        """Record a batch of single-line accesses (vectorized path)."""
        if len(addrs) == 0:
            return
        self._addr.append(np.asarray(addrs, np.int64))
        self._kind.append(np.full(len(addrs), int(kind), np.uint8))
        self._segment.append(np.full(len(addrs), int(segment), np.uint8))
        self._total_accesses.inc(len(addrs))

    def execute(self, instructions: int) -> None:
        """Advance the retired-instruction count."""
        if instructions < 0:
            raise ConfigurationError("instructions must be non-negative")
        self._instructions += instructions
        self._total_instructions.inc(instructions)

    @property
    def instructions(self) -> int:
        return self._instructions

    @property
    def pending_accesses(self) -> int:
        """Accesses buffered since the last :meth:`reset` (trace drain)."""
        return sum(len(chunk) for chunk in self._addr)

    @property
    def total_accesses(self) -> int:
        """Cumulative accesses ever recorded; survives :meth:`reset`.

        Run-level statistics must use this, not :attr:`pending_accesses`,
        or draining the trace silently zeroes the counters.
        """
        return self._total_accesses.value

    @property
    def total_instructions(self) -> int:
        """Cumulative instructions ever executed; survives :meth:`reset`."""
        return self._total_instructions.value

    # ------------------------------------------------------------------

    def to_trace(self) -> Trace:
        """Assemble the recorded accesses into an immutable trace."""
        if not self._addr:
            return Trace.empty()
        addr = np.concatenate(self._addr)
        return Trace(
            addr=addr.astype(np.uint64),
            kind=np.concatenate(self._kind),
            segment=np.concatenate(self._segment),
            thread=np.full(len(addr), self.thread_id, np.uint16),
            instruction_count=max(self._instructions, 1),
        )

    def reset(self) -> None:
        """Drop all recorded accesses and the instruction count."""
        self._addr.clear()
        self._kind.clear()
        self._segment.clear()
        self._instructions = 0


@dataclass(frozen=True)
class EpochEstimate:
    """One epoch's miss-curve estimate and estimator-health readings.

    ``curve`` is ``None`` when the epoch saw no accesses; ``drift`` is the
    maximum absolute miss-ratio change against the previous epoch's curve
    (``inf`` until two consecutive epochs have curves) — the controller's
    instability signal.
    """

    epoch: int
    accesses: int
    sampled_accesses: int
    sampled_reuses: int
    reservoir_lines: int
    reservoir_evictions: int
    rate: float
    drift: float
    curve: ShardsCurve | None

    @property
    def stable(self) -> bool:
        """Whether the estimate exists at all (guardrails tighten this)."""
        return self.curve is not None


class LeafCacheMonitor:
    """Online per-leaf miss-ratio-curve estimation over serving epochs.

    Wraps one leaf's :class:`TraceRecorder`.  Each control epoch the
    monitor drains the recorder's buffered cache-line accesses into a
    fresh :class:`~repro.cachesim.shards.ShardsEnsemble` (per-epoch
    curves track phase changes; a cumulative estimator would blur them),
    then closes the epoch with :meth:`end_epoch`, which returns an
    :class:`EpochEstimate` and publishes estimator health to the
    ``repro.cachesim.shards.*`` metric family (label ``leaf``).

    Units: ``drift_capacities_lines`` are fully-associative capacities in
    cache lines — the ladder drift is measured over; pick the way ladder
    the controller allocates on.
    """

    def __init__(
        self,
        recorder: TraceRecorder,
        drift_capacities_lines: np.ndarray | list[int],
        rate: float = 0.05,
        replicas: int = 4,
        max_reservoir: int | None = 4096,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        leaf: str = "0",
    ) -> None:
        capacities = np.asarray(drift_capacities_lines, np.int64)
        if len(capacities) == 0 or (capacities <= 0).any():
            raise ConfigurationError(
                "drift_capacities_lines must be non-empty and positive"
            )
        self._recorder = recorder
        self._capacities = capacities
        self._rate = rate
        self._replicas = replicas
        self._max_reservoir = max_reservoir
        self._seed = seed
        self._epoch = 0
        self._epoch_accesses = 0
        self._ensemble = self._fresh_ensemble()
        self._previous_curve: ShardsCurve | None = None
        self.last_estimate: EpochEstimate | None = None
        registry = metrics if metrics is not None else MetricsRegistry()
        labels = {"leaf": leaf}
        family = "repro.cachesim.shards"
        self._m_accesses = registry.counter(
            f"{family}.accesses",
            help="Cache-line accesses fed to the SHARDS estimator.",
            unit="accesses",
        ).labels(**labels)
        self._m_sampled = registry.counter(
            f"{family}.sampled",
            help="Accesses admitted by SHARDS spatial sampling.",
            unit="accesses",
        ).labels(**labels)
        self._m_evictions = registry.counter(
            f"{family}.evictions",
            help="Reservoir evictions (rate adaptation events).",
            unit="lines",
        ).labels(**labels)
        self._m_epochs = registry.counter(
            f"{family}.epochs",
            help="Estimation epochs closed.",
            unit="epochs",
        ).labels(**labels)
        self._m_rate = registry.gauge(
            f"{family}.rate",
            help="Effective SHARDS sampling rate after adaptation.",
            unit="fraction",
        ).labels(**labels)
        self._m_reservoir = registry.gauge(
            f"{family}.reservoir_lines",
            help="Lines currently tracked across ensemble reservoirs.",
            unit="lines",
        ).labels(**labels)
        self._m_drift = registry.gauge(
            f"{family}.drift",
            help="Max |miss-ratio| change vs the previous epoch's curve.",
            unit="fraction",
        ).labels(**labels)

    def _fresh_ensemble(self) -> ShardsEnsemble:
        return ShardsEnsemble(
            rate=self._rate,
            replicas=self._replicas,
            max_reservoir=self._max_reservoir,
            seed=self._seed,
        )

    @property
    def epoch(self) -> int:
        """Index of the epoch currently being observed."""
        return self._epoch

    def observe(self, lines: np.ndarray) -> int:
        """Feed raw cache-line ids into the current epoch's estimator."""
        lines = np.asarray(lines, np.int64)
        self._ensemble.feed(lines)
        self._epoch_accesses += len(lines)
        self._m_accesses.inc(len(lines))
        return len(lines)

    def drain(self) -> int:
        """Drain the recorder's buffered accesses into the estimator.

        Returns the number of accesses consumed; the recorder is reset,
        so interleave drains with any trace export the caller needs.
        """
        trace = self._recorder.to_trace()
        if len(trace.addr) == 0:
            return 0
        self._recorder.reset()
        return self.observe((trace.addr // _LINE_BYTES).astype(np.int64))

    def end_epoch(self) -> EpochEstimate:
        """Close the epoch: snapshot the curve, measure drift, reset.

        An epoch with zero accesses yields ``curve=None`` (and leaves the
        previous curve as the drift baseline) rather than raising — idle
        leaves are a fact of phase-changing load.
        """
        ensemble = self._ensemble
        sampled_before_eviction = ensemble.sampled_accesses
        if self._epoch_accesses > 0:
            curve = ensemble.curve()
            drift = (
                curve_drift(self._previous_curve, curve, self._capacities)
                if self._previous_curve is not None
                else math.inf
            )
            sampled_reuses = curve.sampled_reuses
        else:
            curve = None
            drift = math.inf
            sampled_reuses = 0
        estimate = EpochEstimate(
            epoch=self._epoch,
            accesses=self._epoch_accesses,
            sampled_accesses=sampled_before_eviction,
            sampled_reuses=sampled_reuses,
            reservoir_lines=ensemble.reservoir_lines,
            reservoir_evictions=ensemble.reservoir_evictions,
            rate=ensemble.rate,
            drift=drift,
            curve=curve,
        )
        self._m_sampled.inc(sampled_before_eviction)
        self._m_evictions.inc(ensemble.reservoir_evictions)
        self._m_epochs.inc()
        self._m_rate.set(ensemble.rate)
        self._m_reservoir.set(ensemble.reservoir_lines)
        self._m_drift.set(0.0 if math.isinf(drift) else drift)
        if curve is not None:
            self._previous_curve = curve
        self.last_estimate = estimate
        self._epoch = self._epoch + 1
        self._epoch_accesses = 0
        self._ensemble = self._fresh_ensemble()
        return estimate
