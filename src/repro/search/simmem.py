"""Simulated memory: allocation and access recording for the search engine.

The paper traces production search with Pin and attributes every access to
code, heap, shard, or stack (§III-B).  Our engine gets the same attribution
by construction: index and runtime structures are *placed* in a simulated
address space by :class:`SimulatedMemory`, and the serving code records the
byte ranges it touches through a :class:`TraceRecorder`, which assembles the
numpy-backed :class:`~repro.memtrace.trace.Trace`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.memtrace.address_space import AddressSpace
from repro.memtrace.trace import AccessKind, Segment, Trace
from repro.obs.metrics import MetricsRegistry

_LINE_BYTES = 64


class SimulatedMemory:
    """Bump allocator over the segments of an :class:`AddressSpace`."""

    def __init__(self, address_space: AddressSpace | None = None) -> None:
        self.address_space = address_space or AddressSpace()
        self._cursor: dict[Segment, int] = {
            seg: self.address_space.region(seg).base
            for seg in (Segment.CODE, Segment.HEAP, Segment.SHARD)
        }
        self._labels: list[tuple[str, Segment, int, int]] = []

    def alloc(self, segment: Segment, size: int, label: str = "") -> int:
        """Reserve ``size`` bytes in a segment; return the base address.

        Allocations are 64-byte aligned so structures do not share cache
        lines by accident.
        """
        if segment == Segment.STACK:
            raise ConfigurationError(
                "stacks are per-thread; use AddressSpace.thread_stack"
            )
        if size <= 0:
            raise ConfigurationError(f"allocation size must be positive: {size}")
        aligned = -(-size // _LINE_BYTES) * _LINE_BYTES
        base = self._cursor[segment]
        region = self.address_space.region(segment)
        if base + aligned > region.end:
            raise SimulationError(
                f"segment {segment.name} exhausted: need {aligned} bytes, "
                f"{region.end - base} left"
            )
        self._cursor[segment] = base + aligned
        self._labels.append((label, segment, base, aligned))
        return base

    def used_bytes(self, segment: Segment) -> int:
        """Bytes allocated so far in a segment."""
        if segment == Segment.STACK:
            return 0
        return self._cursor[segment] - self.address_space.region(segment).base

    def allocations(self) -> list[tuple[str, Segment, int, int]]:
        """(label, segment, base, size) of every allocation, in order."""
        return list(self._labels)


class TraceRecorder:
    """Accumulates labelled accesses and assembles a :class:`Trace`.

    Ranged accesses are expanded to one access per cache line, matching the
    granularity the cache simulators care about; ``instructions`` advances
    the retired-instruction budget that MPKI is normalized by.
    """

    def __init__(
        self, thread_id: int = 0, metrics: MetricsRegistry | None = None
    ) -> None:
        self.thread_id = thread_id
        self._addr: list[np.ndarray] = []
        self._kind: list[np.ndarray] = []
        self._segment: list[np.ndarray] = []
        self._instructions = 0
        # Cumulative counters live in ``repro.mem.trace.*`` families
        # (label ``thread``): they survive :meth:`reset` by design — a
        # trace drain must not zero run-level accounting.  A private
        # registry backs them when no shared one is supplied.
        registry = metrics if metrics is not None else MetricsRegistry()
        thread_label = str(thread_id)
        self._total_accesses = registry.counter(
            "repro.mem.trace.accesses",
            help="Cache-line accesses recorded (per trace thread).",
            unit="accesses",
        ).labels(thread=thread_label)
        self._total_instructions = registry.counter(
            "repro.mem.trace.instructions",
            help="Retired instructions charged (per trace thread).",
            unit="instructions",
        ).labels(thread=thread_label)

    # ------------------------------------------------------------------

    def touch(
        self,
        addr: int,
        size: int,
        kind: AccessKind,
        segment: Segment,
    ) -> None:
        """Record an access to ``[addr, addr + size)``, one event per line."""
        if size <= 0:
            raise ConfigurationError(f"access size must be positive: {size}")
        first = addr // _LINE_BYTES
        last = (addr + size - 1) // _LINE_BYTES
        lines = np.arange(first, last + 1, dtype=np.int64) * _LINE_BYTES
        self._addr.append(lines)
        self._kind.append(np.full(len(lines), int(kind), np.uint8))
        self._segment.append(np.full(len(lines), int(segment), np.uint8))
        self._total_accesses.inc(len(lines))

    def touch_many(
        self,
        addrs: np.ndarray,
        kind: AccessKind,
        segment: Segment,
    ) -> None:
        """Record a batch of single-line accesses (vectorized path)."""
        if len(addrs) == 0:
            return
        self._addr.append(np.asarray(addrs, np.int64))
        self._kind.append(np.full(len(addrs), int(kind), np.uint8))
        self._segment.append(np.full(len(addrs), int(segment), np.uint8))
        self._total_accesses.inc(len(addrs))

    def execute(self, instructions: int) -> None:
        """Advance the retired-instruction count."""
        if instructions < 0:
            raise ConfigurationError("instructions must be non-negative")
        self._instructions += instructions
        self._total_instructions.inc(instructions)

    @property
    def instructions(self) -> int:
        return self._instructions

    @property
    def pending_accesses(self) -> int:
        """Accesses buffered since the last :meth:`reset` (trace drain)."""
        return sum(len(chunk) for chunk in self._addr)

    @property
    def total_accesses(self) -> int:
        """Cumulative accesses ever recorded; survives :meth:`reset`.

        Run-level statistics must use this, not :attr:`pending_accesses`,
        or draining the trace silently zeroes the counters.
        """
        return self._total_accesses.value

    @property
    def total_instructions(self) -> int:
        """Cumulative instructions ever executed; survives :meth:`reset`."""
        return self._total_instructions.value

    # ------------------------------------------------------------------

    def to_trace(self) -> Trace:
        """Assemble the recorded accesses into an immutable trace."""
        if not self._addr:
            return Trace.empty()
        addr = np.concatenate(self._addr)
        return Trace(
            addr=addr.astype(np.uint64),
            kind=np.concatenate(self._kind),
            segment=np.concatenate(self._segment),
            thread=np.full(len(addr), self.thread_id, np.uint16),
            instruction_count=max(self._instructions, 1),
        )

    def reset(self) -> None:
        """Drop all recorded accesses and the instruction count."""
        self._addr.clear()
        self._kind.clear()
        self._segment.clear()
        self._instructions = 0
