"""Event-driven serving core: queues, replicas, batching, heterogeneity.

The synchronous tree in :mod:`repro.search.root` *samples* each leaf's
sojourn time from the closed-form M/M/1 model — waiting is baked into
every draw, so utilization is an input and overload (ρ >= 1) is
unrepresentable.  This module turns the arrow around: leaves become
actual queues drained by replica servers under a simulated-time event
loop, service times are drawn at ρ = 0 (pure work), and *waiting
emerges* from contention between overlapping queries.  p50/p99/p999 are
then measured quantities, valid at any offered load — including past
saturation, where admission control sheds excess work and pages degrade
instead of the model raising.

Components:

* :class:`EventLoop` — a deterministic discrete-event loop over the
  injector's :class:`~repro.search.faults.SimulatedClock` (heap ordered
  by time with a scheduling-sequence tie-break; cancellable handles).
* :class:`QueueConfig` — per-leaf queue shape: discipline (FIFO or
  earliest-deadline-first), replica count, admission depth limit, and
  RPC batching.
* :class:`ServingEngine` — fans queries out to per-leaf replica queues
  (least-loaded balancing), drives the PR-2 robustness machinery —
  retries, hedges, deadlines — as events, and emits pages whose
  ``latency_ms`` is measured queueing delay.  Fault and latency draws
  come from the injector's *keyed* streams
  (:meth:`~repro.search.faults.FaultInjector.plan_rpc` with
  ``utilization=0.0``), so an engine run and a synchronous run of the
  same scenario consume identical variates.
* :class:`HeterogeneousPool` — big/little cores with deadline-aware
  "hurry up" migration (after arXiv:1912.09844; energy framing in
  arXiv:2303.08396): work starts on efficient little cores and jumps to
  big ones exactly when the deadline is at risk.

Queue behaviour is observable as the ``repro.search.queue.*`` metric
family (wait/service/sojourn histograms, depth gauge, shed/batch
counters); the engine reuses the ``repro.search.root.*`` fan-out
counters so dashboards written for the synchronous tree keep working.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, log_spaced_bounds
from repro.search.faults import (
    HEDGE_ATTEMPT_OFFSET,
    FaultInjector,
    RpcDraw,
    SimulatedClock,
)
from repro.search.leaf import LeafServer, SearchHit
from repro.search.policies import ServingPolicy
from repro.search.root import SearchResultPage, _merge_hits

#: Queue-delay buckets: 0.01 ms .. 100 s, fine-grained so measured tails
#: survive bucketing (≈15% bucket width at per_decade=16).
_QUEUE_BOUNDS = log_spaced_bounds(lo=0.01, hi=100_000.0, per_decade=16)


# ----------------------------------------------------------------------
# Event loop
# ----------------------------------------------------------------------


@dataclass
class EventHandle:
    """A scheduled callback; :meth:`cancel` makes the loop skip it."""

    time_ms: float
    seq: int
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event dead; the loop discards it lazily."""
        self.cancelled = True


class EventLoop:
    """A deterministic discrete-event loop in simulated milliseconds.

    Events fire in ``(time_ms, scheduling order)`` — the monotone
    sequence number breaks same-instant ties, so a run is a pure
    function of the schedule calls.  The loop advances the shared
    :class:`~repro.search.faults.SimulatedClock`, keeping every other
    component (injector death times, span timestamps) on engine time.
    """

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self._heap: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = 0
        #: Events executed so far (cancelled ones excluded).
        self.events_run = 0

    def __len__(self) -> int:
        """Pending heap entries (cancelled events still count until popped)."""
        return len(self._heap)

    def schedule_at(
        self, time_ms: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` at an absolute simulated time.

        Units: ``time_ms`` is milliseconds of simulated time; it must
        not lie in the past.
        """
        if time_ms < self.clock.now_ms:
            raise ConfigurationError(
                f"cannot schedule into the past: {time_ms} < {self.clock.now_ms}"
            )
        handle = EventHandle(time_ms=float(time_ms), seq=self._seq)
        heapq.heappush(self._heap, (float(time_ms), self._seq, handle, callback))
        self._seq += 1
        return handle

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after a relative delay (>= 0) in simulated ms."""
        if delay_ms < 0:
            raise ConfigurationError(f"delay_ms must be >= 0, got {delay_ms}")
        return self.schedule_at(self.clock.now_ms + delay_ms, callback)

    def run(self, until_ms: float | None = None) -> int:
        """Drain the heap (or stop after ``until_ms``); returns events run.

        Units: ``until_ms`` is an absolute simulated time; events
        scheduled strictly after it stay pending.
        """
        executed = 0
        while self._heap:
            time_ms, __, handle, callback = self._heap[0]
            if until_ms is not None and time_ms > until_ms:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            # Guard against float round-off when chained completions
            # land a hair before "now".
            self.clock.advance(max(0.0, time_ms - self.clock.now_ms))
            callback()
            executed += 1
        self.events_run += executed
        return executed


# ----------------------------------------------------------------------
# Leaf queues
# ----------------------------------------------------------------------

_DISCIPLINES = ("fifo", "edf")


@dataclass(frozen=True)
class QueueConfig:
    """Shape of every leaf's serving queue.

    ``discipline`` orders waiting RPCs: ``"fifo"`` by arrival,
    ``"edf"`` by earliest absolute deadline (deadline-less RPCs sort
    last).  ``replicas`` is the number of identical servers per leaf;
    arrivals join the least-loaded replica's queue.  ``max_depth``
    (per replica, queued + in service) is the admission limit — beyond
    it the RPC is shed immediately, which is what keeps a saturated
    engine degraded instead of unboundedly backlogged.  ``max_batch``
    RPCs are drained per server dispatch, paying ``batch_overhead_ms``
    once per batch; ``max_batch=1`` with one replica is exactly M/M/1.
    """

    discipline: str = "fifo"
    replicas: int = 1
    max_depth: int | None = None
    max_batch: int = 1
    batch_overhead_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.discipline not in _DISCIPLINES:
            raise ConfigurationError(
                f"discipline must be one of {_DISCIPLINES}, got "
                f"{self.discipline!r}"
            )
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")
        if self.max_depth is not None and self.max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1 or None, got {self.max_depth}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_overhead_ms < 0:
            raise ConfigurationError(
                f"batch_overhead_ms must be >= 0, got {self.batch_overhead_ms}"
            )


@dataclass
class _Job:
    """One leaf RPC attempt sitting in (or flowing through) a queue."""

    seq: int
    query: "_QueryState"
    leaf_index: int
    attempt: int
    draw: RpcDraw
    deadline_at_ms: float
    enqueued_ms: float = 0.0


class _LeafReplica:
    """One server draining one queue of leaf RPCs."""

    def __init__(
        self, engine: "ServingEngine", leaf_index: int, replica_index: int
    ) -> None:
        self.engine = engine
        self.leaf_index = leaf_index
        self.replica_index = replica_index
        self._queue: list[tuple[float, int, _Job]] = []
        #: Queued plus in-service jobs — the least-loaded balancing key
        #: and the admission-control depth.
        self.outstanding = 0
        self.busy = False
        self._batch_size = 0

    def enqueue(self, job: _Job) -> None:
        engine = self.engine
        job.enqueued_ms = engine.loop.clock.now_ms
        rank = (
            job.deadline_at_ms
            if engine.queue.discipline == "edf"
            else float(job.seq)
        )
        heapq.heappush(self._queue, (rank, job.seq, job))
        self.outstanding += 1
        engine._note_depth(+1)
        if not self.busy:
            self._start_batch()

    def _start_batch(self) -> None:
        engine = self.engine
        now_ms = engine.loop.clock.now_ms
        batch: list[_Job] = []
        while self._queue and len(batch) < engine.queue.max_batch:
            batch.append(heapq.heappop(self._queue)[2])
        self.busy = True
        self._batch_size = len(batch)
        engine._batches.inc()
        # In-batch service is sequential: job i completes after the jobs
        # batched ahead of it, and the server frees when the batch does.
        finish_ms = now_ms + engine.queue.batch_overhead_ms
        for job in batch:
            engine._wait_hist.observe(now_ms - job.enqueued_ms)
            engine._service_hist.observe(job.draw.latency_ms)
            finish_ms += job.draw.latency_ms
            engine.loop.schedule_at(
                finish_ms, lambda j=job: self._job_done(j)
            )
        engine.loop.schedule_at(finish_ms, self._batch_done)

    def _job_done(self, job: _Job) -> None:
        self.outstanding -= 1
        self.engine._note_depth(-1)
        self.engine._rpc_resolved(job)

    def _batch_done(self) -> None:
        self.busy = False
        self._batch_size = 0
        if self._queue:
            self._start_batch()


# ----------------------------------------------------------------------
# Query state machine
# ----------------------------------------------------------------------


class _QueryState:
    """Per-in-flight-query bookkeeping: leaf fan-out, hedges, deadline."""

    __slots__ = (
        "seq",
        "terms",
        "query_key",
        "top_k",
        "start_ms",
        "deadline_at_ms",
        "done",
        "resolved",
        "leaf_hits",
        "answered",
        "resolved_count",
        "hedged",
        "hedge_handles",
        "deadline_handle",
        "finalize_handle",
    )

    def __init__(
        self,
        seq: int,
        terms: list[int],
        query_key: int,
        top_k: int,
        start_ms: float,
        deadline_ms: float | None,
        num_leaves: int,
    ) -> None:
        self.seq = seq
        self.terms = terms
        self.query_key = query_key
        self.top_k = top_k
        self.start_ms = start_ms
        self.deadline_at_ms = (
            math.inf if deadline_ms is None else start_ms + deadline_ms
        )
        self.done = False
        self.resolved = [False] * num_leaves
        self.leaf_hits: list[list[SearchHit] | None] = [None] * num_leaves
        self.answered = 0
        self.resolved_count = 0
        self.hedged = [False] * num_leaves
        self.hedge_handles: list[EventHandle | None] = [None] * num_leaves
        self.deadline_handle: EventHandle | None = None
        self.finalize_handle: EventHandle | None = None


class ServingEngine:
    """The event-driven serving core.

    Construct over real ``leaves`` (pages carry scored hits and
    snippets) or a bare ``num_leaves`` (pure queueing study — no
    content, orders of magnitude faster; what the load generator uses).
    ``aggregation_levels`` models the tree depth: each level charges
    ``policy.overhead_ms`` once per query on the way up.

    Use :meth:`submit_at` to schedule arrivals (open loop: arrival
    times come from the workload, never from completions) and
    :meth:`run` to drain the event heap; pages come back in arrival
    order.  All randomness flows through the injector's keyed streams,
    so two engines over the same scenario — or an engine and the
    synchronous tree — draw identical faults and service times.
    """

    def __init__(
        self,
        leaves: Sequence[LeafServer] | None = None,
        num_leaves: int | None = None,
        injector: FaultInjector | None = None,
        policy: ServingPolicy | None = None,
        queue: QueueConfig | None = None,
        metrics: MetricsRegistry | None = None,
        aggregation_levels: int = 1,
        score_content: bool | None = None,
    ) -> None:
        if leaves is None and num_leaves is None:
            raise ConfigurationError("need leaves or num_leaves")
        self.leaves = list(leaves) if leaves is not None else None
        self.num_leaves = (
            len(self.leaves) if self.leaves is not None else int(num_leaves)  # type: ignore[arg-type]
        )
        if self.num_leaves < 1:
            raise ConfigurationError("need at least one leaf")
        if aggregation_levels < 1:
            raise ConfigurationError(
                f"aggregation_levels must be >= 1, got {aggregation_levels}"
            )
        self.injector = injector if injector is not None else FaultInjector()
        self.policy = policy if policy is not None else ServingPolicy()
        self.queue = queue if queue is not None else QueueConfig()
        self.aggregation_levels = aggregation_levels
        self.score_content = (
            (self.leaves is not None) if score_content is None else score_content
        )
        if self.score_content and self.leaves is None:
            raise ConfigurationError("score_content needs real leaves")
        self.loop = EventLoop(clock=self.injector.clock)
        self._replicas = [
            [
                _LeafReplica(self, leaf_index, replica_index)
                for replica_index in range(self.queue.replicas)
            ]
            for leaf_index in range(self.num_leaves)
        ]
        self._pages: dict[int, SearchResultPage] = {}
        self._next_query_seq = 0
        self._next_job_seq = 0
        self._depth_total = 0
        self._on_done: Callable[[SearchResultPage], None] | None = None

        registry = metrics if metrics is not None else NULL_REGISTRY
        # The queue family: what the synchronous tree cannot measure.
        self._wait_hist = registry.histogram(
            "repro.search.queue.wait_ms",
            help="Time a leaf RPC spent queued before service began.",
            unit="ms",
            bounds=_QUEUE_BOUNDS,
        )
        self._service_hist = registry.histogram(
            "repro.search.queue.service_ms",
            help="Pure service time of leaf RPCs (utilization-free draws).",
            unit="ms",
            bounds=_QUEUE_BOUNDS,
        )
        self._sojourn_hist = registry.histogram(
            "repro.search.queue.sojourn_ms",
            help="Leaf RPC wait + service: the measured queueing delay.",
            unit="ms",
            bounds=_QUEUE_BOUNDS,
        )
        self._depth_gauge = registry.gauge(
            "repro.search.queue.depth",
            help="Leaf RPCs queued or in service, all replicas.",
            unit="rpcs",
        )
        self._shed = registry.counter(
            "repro.search.queue.shed",
            help="Leaf RPCs rejected by admission control (queue full).",
            unit="rpcs",
        )
        self._batches = registry.counter(
            "repro.search.queue.batches",
            help="Server dispatches (each drains up to max_batch RPCs).",
            unit="batches",
        )
        self._engine_queries = registry.counter(
            "repro.search.engine.queries",
            help="Queries admitted to the event-driven engine.",
            unit="queries",
        )
        self._engine_degraded = registry.counter(
            "repro.search.engine.degraded",
            help="Engine pages served from an incomplete leaf set.",
            unit="pages",
        )
        self._engine_latency = registry.histogram(
            "repro.search.engine.latency_ms",
            help="Measured end-to-end query latency under the event loop.",
            unit="ms",
            bounds=_QUEUE_BOUNDS,
        )
        # Shared fan-out families — same names as the synchronous tree,
        # so existing dashboards and tests read engine runs unchanged.
        self._leaf_rpcs = registry.counter(
            "repro.search.root.leaf_rpcs",
            help="Logical leaf RPCs issued by aggregators (all tree levels).",
            unit="rpcs",
        )
        self._retries = registry.counter(
            "repro.search.root.retries",
            help="Extra leaf attempts after transient errors.",
            unit="rpcs",
        )
        self._hedged = registry.counter(
            "repro.search.root.hedged_rpcs",
            help="Backup (hedged) leaf requests issued for slow primaries.",
            unit="rpcs",
        )
        self._deadline_misses = registry.counter(
            "repro.search.root.deadline_misses",
            help="Leaf replies dropped because the deadline budget expired.",
            unit="rpcs",
        )
        self._leaf_failures = registry.counter(
            "repro.search.root.leaf_failures",
            help="Leaf RPCs that never answered (failures, retries exhausted).",
            unit="rpcs",
        )

    # ------------------------------------------------------------------

    @property
    def queries_submitted(self) -> int:
        """Queries scheduled so far (arrived or not)."""
        return self._next_query_seq

    def on_done(self, callback: Callable[[SearchResultPage], None]) -> None:
        """Register a completion hook (called once per finished page)."""
        self._on_done = callback

    def _leaf_id(self, leaf_index: int) -> int:
        """The injector-facing leaf id (shard id when leaves are real)."""
        if self.leaves is not None:
            return self.leaves[leaf_index].shard.shard_id
        return leaf_index

    def _note_depth(self, delta: int) -> None:
        self._depth_total += delta
        self._depth_gauge.set(float(self._depth_total))

    # ------------------------------------------------------------------

    def submit_at(
        self,
        arrival_ms: float,
        terms: Sequence[int] = (),
        top_k: int = 10,
        deadline_ms: float | None = None,
        query_key: int | None = None,
    ) -> int:
        """Schedule one query's arrival; returns its sequence number.

        ``query_key`` defaults to the sequence number — the same
        convention the front end uses — keying this query's fault and
        latency draws.

        Units: ``arrival_ms`` is an absolute simulated time;
        ``deadline_ms`` is a relative budget from arrival (None = no
        deadline).
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        seq = self._next_query_seq
        self._next_query_seq += 1
        key = seq if query_key is None else query_key
        terms_list = [int(t) for t in terms]
        self.loop.schedule_at(
            arrival_ms,
            lambda: self._start_query(seq, terms_list, key, top_k, deadline_ms),
        )
        return seq

    def run(self, until_ms: float | None = None) -> list[SearchResultPage]:
        """Drain the event heap; pages completed so far, in arrival order.

        Units: ``until_ms`` is an absolute simulated-time stopping point
        (None drains everything).
        """
        self.loop.run(until_ms=until_ms)
        return [self._pages[seq] for seq in sorted(self._pages)]

    # ------------------------------------------------------------------

    def _start_query(
        self,
        seq: int,
        terms: list[int],
        query_key: int,
        top_k: int,
        deadline_ms: float | None,
    ) -> None:
        self._engine_queries.inc()
        query = _QueryState(
            seq=seq,
            terms=terms,
            query_key=query_key,
            top_k=top_k,
            start_ms=self.loop.clock.now_ms,
            deadline_ms=deadline_ms,
            num_leaves=self.num_leaves,
        )
        if deadline_ms is not None:
            query.deadline_handle = self.loop.schedule(
                deadline_ms, lambda: self._on_deadline(query)
            )
        for leaf_index in range(self.num_leaves):
            self._leaf_rpcs.inc()
            self._issue_rpc(query, leaf_index, attempt=1)

    def _issue_rpc(self, query: _QueryState, leaf_index: int, attempt: int) -> None:
        # utilization=0.0: the queue in front of this server supplies
        # the waiting; baking the spec's ρ in as well would double-count.
        draw = self.injector.plan_rpc(
            self._leaf_id(leaf_index),
            query_key=query.query_key,
            attempt=attempt,
            utilization=0.0,
        )
        if draw.kind in ("dead", "hard"):
            # Connection refused: detected without occupying a queue.
            self.loop.schedule(
                draw.latency_ms,
                lambda: self._rpc_failed(query, leaf_index, attempt, transient=False),
            )
            return
        replica = min(
            self._replicas[leaf_index],
            key=lambda r: (r.outstanding, r.replica_index),
        )
        if (
            self.queue.max_depth is not None
            and replica.outstanding >= self.queue.max_depth
        ):
            self._shed.inc()
            self._rpc_failed(query, leaf_index, attempt, transient=False)
            return
        job = _Job(
            seq=self._next_job_seq,
            query=query,
            leaf_index=leaf_index,
            attempt=attempt,
            draw=draw,
            deadline_at_ms=query.deadline_at_ms,
        )
        self._next_job_seq += 1
        replica.enqueue(job)
        if (
            self.policy.hedge is not None
            and attempt == 1
            and not query.hedged[leaf_index]
        ):
            query.hedge_handles[leaf_index] = self.loop.schedule(
                self.policy.hedge.after_ms,
                lambda: self._fire_hedge(query, leaf_index, attempt),
            )

    def _fire_hedge(self, query: _QueryState, leaf_index: int, attempt: int) -> None:
        if query.done or query.resolved[leaf_index]:
            return
        query.hedged[leaf_index] = True
        self._hedged.inc()
        self._issue_rpc(query, leaf_index, HEDGE_ATTEMPT_OFFSET + attempt)

    def _rpc_resolved(self, job: _Job) -> None:
        now_ms = self.loop.clock.now_ms
        self._sojourn_hist.observe(now_ms - job.enqueued_ms)
        if job.draw.kind == "transient":
            self._rpc_failed(job.query, job.leaf_index, job.attempt, transient=True)
        else:
            self._rpc_succeeded(job.query, job.leaf_index)

    def _rpc_failed(
        self, query: _QueryState, leaf_index: int, attempt: int, transient: bool
    ) -> None:
        if query.done or query.resolved[leaf_index]:
            return
        if attempt >= HEDGE_ATTEMPT_OFFSET:
            # A failed hedge forfeits the hedge; the primary may still win.
            return
        retry = self.policy.retry
        if transient and attempt < retry.max_attempts:
            self._retries.inc()
            self.loop.schedule(
                retry.backoff_ms,
                lambda: self._retry(query, leaf_index, attempt + 1),
            )
            return
        self._leaf_failures.inc()
        self._resolve_leaf(query, leaf_index, hits=None)

    def _retry(self, query: _QueryState, leaf_index: int, attempt: int) -> None:
        if query.done or query.resolved[leaf_index]:
            return
        self._issue_rpc(query, leaf_index, attempt)

    def _rpc_succeeded(self, query: _QueryState, leaf_index: int) -> None:
        if query.done or query.resolved[leaf_index]:
            return  # late reply: lost a hedge race or the deadline passed
        if self.score_content:
            assert self.leaves is not None
            hits = self.leaves[leaf_index].search(query.terms, top_k=query.top_k)
        else:
            hits = []
        self._resolve_leaf(query, leaf_index, hits=hits)

    def _resolve_leaf(
        self, query: _QueryState, leaf_index: int, hits: list[SearchHit] | None
    ) -> None:
        query.resolved[leaf_index] = True
        query.resolved_count += 1
        handle = query.hedge_handles[leaf_index]
        if handle is not None:
            handle.cancel()
        if hits is not None:
            query.answered += 1
            query.leaf_hits[leaf_index] = hits
        if query.resolved_count == self.num_leaves:
            # All leaves resolved: pay the aggregation overhead, then emit.
            query.finalize_handle = self.loop.schedule(
                self.policy.overhead_ms * self.aggregation_levels,
                lambda: self._finalize(query),
            )

    def _on_deadline(self, query: _QueryState) -> None:
        if query.done:
            return
        if query.finalize_handle is not None:
            query.finalize_handle.cancel()
        for leaf_index in range(self.num_leaves):
            if not query.resolved[leaf_index]:
                self._deadline_misses.inc()
        self._finalize(query)

    def _finalize(self, query: _QueryState) -> None:
        query.done = True
        if query.deadline_handle is not None:
            query.deadline_handle.cancel()
        latency_ms = self.loop.clock.now_ms - query.start_ms
        merged = _merge_hits(
            (hit for hits in query.leaf_hits if hits for hit in hits),
            query.top_k,
        )
        if self.score_content and merged:
            assert self.leaves is not None
            owner_of = {
                int(doc): self.leaves[leaf_index]
                for leaf_index, hits in enumerate(query.leaf_hits)
                if hits is not None
                for doc in self.leaves[leaf_index].shard.doc_ids.tolist()
            }
            snippets = tuple(
                owner_of[hit.doc_id].snippet(hit.doc_id, query.terms)
                for hit in merged
            )
        else:
            snippets = tuple("" for __ in merged)
        complete = query.answered == self.num_leaves
        if not complete:
            self._engine_degraded.inc()
        self._engine_latency.observe(latency_ms)
        page = SearchResultPage(
            terms=tuple(query.terms),
            hits=tuple(merged),
            snippets=snippets,
            complete=complete,
            leaves_answered=query.answered,
            leaves_total=self.num_leaves,
            latency_ms=latency_ms,
        )
        self._pages[query.seq] = page
        if self._on_done is not None:
            self._on_done(page)


# ----------------------------------------------------------------------
# Heterogeneous big/little pool ("hurry up" scheduling)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CoreSpec:
    """A homogeneous core group: how many, and how fast.

    ``speed`` is relative throughput — a core at 2.0 drains work twice
    as fast as a unit core, so a job with ``demand_ms`` of unit-speed
    work occupies it for ``demand_ms / 2``.
    """

    count: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError(f"count must be >= 0, got {self.count}")
        if self.speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {self.speed}")


@dataclass
class _PoolJob:
    """One deadline-carrying job flowing through the pool."""

    seq: int
    demand_ms: float
    arrival_ms: float
    deadline_at_ms: float
    remaining_ms: float = 0.0
    started_ms: float = -1.0
    running_on: str = ""
    migrated: bool = False
    finished: bool = False
    done_handle: EventHandle | None = None
    panic_handle: EventHandle | None = None


@dataclass
class PoolStats:
    """Aggregate outcome of one pool run."""

    completed: int = 0
    deadline_misses: int = 0
    migrations: int = 0
    preemptions: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    def quantile_ms(self, p: float) -> float:
        """Empirical p-quantile of job completion latency."""
        if not 0 < p < 1:
            raise ConfigurationError(f"p must be in (0, 1), got {p}")
        if not self.latencies_ms:
            raise ConfigurationError("no jobs completed yet")
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, math.ceil(p * len(ordered)) - 1)
        return ordered[index]

    @property
    def miss_rate(self) -> float:
        """Fraction of completed jobs that blew their deadline."""
        return self.deadline_misses / self.completed if self.completed else 0.0


class HeterogeneousPool:
    """Big/little cores with deadline-aware "hurry up" migration.

    Two policies share the same event loop and job stream:

    * ``"fifo"`` — one arrival-ordered queue; any free core takes the
      head (fastest free core first).  The baseline: long jobs camp on
      big cores whether they need them or not.
    * ``"hurryup"`` — every job starts life on a little (efficient)
      core.  At admission a *panic time* is computed: the last instant
      a big core, paying ``migration_overhead_ms``, could still meet
      the deadline.  A panic timer migrates the job — preempting it
      mid-service if necessary, carrying exactly its remaining demand —
      onto the big queue (earliest deadline first).  Jobs whose little
      completion makes the deadline never migrate; jobs no big core
      could save are left to finish late rather than waste a migration.

    Deadlines are soft: late jobs complete and are counted in
    ``stats.deadline_misses``.
    """

    def __init__(
        self,
        loop: EventLoop,
        big: CoreSpec,
        little: CoreSpec,
        policy: str = "hurryup",
        migration_overhead_ms: float = 0.5,
    ) -> None:
        if policy not in ("fifo", "hurryup"):
            raise ConfigurationError(
                f"policy must be 'fifo' or 'hurryup', got {policy!r}"
            )
        if big.count + little.count < 1:
            raise ConfigurationError("pool needs at least one core")
        if policy == "hurryup":
            if not big.count or not little.count:
                raise ConfigurationError("hurryup needs both core kinds")
            if big.speed <= little.speed:
                raise ConfigurationError(
                    "hurryup needs big cores faster than little ones "
                    f"(got {big.speed} <= {little.speed})"
                )
        if migration_overhead_ms < 0:
            raise ConfigurationError(
                f"migration_overhead_ms must be >= 0, got {migration_overhead_ms}"
            )
        self.loop = loop
        self.big = big
        self.little = little
        self.policy = policy
        self.migration_overhead_ms = migration_overhead_ms
        self.stats = PoolStats()
        self._free_big = big.count
        self._free_little = little.count
        #: Waiting jobs: (rank, seq, job).  FIFO ranks by seq; the
        #: hurryup big queue ranks by absolute deadline (EDF).
        self._big_queue: list[tuple[float, int, _PoolJob]] = []
        self._little_queue: list[tuple[float, int, _PoolJob]] = []
        self._next_seq = 0

    # ------------------------------------------------------------------

    def submit_at(
        self, arrival_ms: float, demand_ms: float, deadline_ms: float
    ) -> int:
        """Schedule one job; returns its sequence number.

        Units: ``arrival_ms`` absolute simulated time; ``demand_ms`` is
        unit-speed work; ``deadline_ms`` is a relative budget from
        arrival.
        """
        if demand_ms <= 0:
            raise ConfigurationError(f"demand_ms must be positive, got {demand_ms}")
        if deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        seq = self._next_seq
        self._next_seq += 1
        job = _PoolJob(
            seq=seq,
            demand_ms=float(demand_ms),
            arrival_ms=float(arrival_ms),
            deadline_at_ms=float(arrival_ms) + float(deadline_ms),
            remaining_ms=float(demand_ms),
        )
        self.loop.schedule_at(arrival_ms, lambda: self._arrive(job))
        return seq

    def run(self) -> PoolStats:
        """Drain the loop and return the run's aggregate stats."""
        self.loop.run()
        return self.stats

    # ------------------------------------------------------------------

    def _arrive(self, job: _PoolJob) -> None:
        if self.policy == "fifo":
            heapq.heappush(self._big_queue, (float(job.seq), job.seq, job))
            self._dispatch_fifo()
            return
        # hurryup: little first, with a panic timer as the safety net.
        heapq.heappush(self._little_queue, (float(job.seq), job.seq, job))
        self._arm_panic(job)
        self._dispatch_little()

    def _dispatch_fifo(self) -> None:
        while self._big_queue and (self._free_big or self._free_little):
            job = heapq.heappop(self._big_queue)[2]
            if self._free_big:
                self._free_big -= 1
                self._start(job, "big", self.big.speed)
            else:
                self._free_little -= 1
                self._start(job, "little", self.little.speed)

    def _dispatch_little(self) -> None:
        while self._free_little and self._little_queue:
            job = heapq.heappop(self._little_queue)[2]
            if job.migrated or job.finished:
                continue
            self._free_little -= 1
            self._start(job, "little", self.little.speed)

    def _dispatch_big(self) -> None:
        while self._free_big and self._big_queue:
            job = heapq.heappop(self._big_queue)[2]
            if job.finished:
                continue
            self._free_big -= 1
            self._start(job, "big", self.big.speed)

    def _start(self, job: _PoolJob, kind: str, speed: float) -> None:
        now_ms = self.loop.clock.now_ms
        job.started_ms = now_ms
        job.running_on = kind
        service_ms = job.remaining_ms / speed
        job.done_handle = self.loop.schedule(
            service_ms, lambda: self._complete(job)
        )
        if (
            self.policy == "hurryup"
            and kind == "little"
            and job.panic_handle is not None
        ):
            # Re-arm with the running-job formula: remaining demand now
            # shrinks at little speed, moving the break-even point.
            job.panic_handle.cancel()
            job.panic_handle = None
            self._arm_panic(job)

    def _complete(self, job: _PoolJob) -> None:
        now_ms = self.loop.clock.now_ms
        job.finished = True
        job.running_on, freed = "", job.running_on
        if job.panic_handle is not None:
            job.panic_handle.cancel()
            job.panic_handle = None
        self.stats.completed += 1
        self.stats.latencies_ms.append(now_ms - job.arrival_ms)
        if now_ms > job.deadline_at_ms:
            self.stats.deadline_misses += 1
        if freed == "big":
            self._free_big += 1
        else:
            self._free_little += 1
        if self.policy == "fifo":
            self._dispatch_fifo()
        else:
            self._dispatch_big()
            self._dispatch_little()

    # -- hurryup machinery ---------------------------------------------

    def _panic_time_ms(self, job: _PoolJob) -> float | None:
        """Latest instant a big core still meets this job's deadline.

        None when no migration will ever be needed (the little path
        makes the deadline) or none can help (already unsalvageable).
        """
        now_ms = self.loop.clock.now_ms
        overhead_ms = self.migration_overhead_ms
        if job.running_on == "little":
            # remaining(t) = remaining_now - (t - now) * little_speed
            little_done_ms = job.started_ms + job.remaining_ms / self.little.speed
            if little_done_ms <= job.deadline_at_ms:
                return None
            remaining_now_ms = job.remaining_ms - (
                (now_ms - job.started_ms) * self.little.speed
            )
            ratio = self.little.speed / self.big.speed
            panic_ms = (
                job.deadline_at_ms
                - overhead_ms
                - remaining_now_ms / self.big.speed
                - now_ms * ratio
            ) / (1.0 - ratio)
        else:
            # Waiting: demand does not shrink while queued.
            panic_ms = (
                job.deadline_at_ms
                - overhead_ms
                - job.remaining_ms / self.big.speed
            )
        if panic_ms < now_ms:
            return None  # even an instant migration would be late
        return panic_ms

    def _arm_panic(self, job: _PoolJob) -> None:
        panic_ms = self._panic_time_ms(job)
        if panic_ms is None:
            return
        job.panic_handle = self.loop.schedule_at(
            panic_ms, lambda: self._panic(job)
        )

    def _panic(self, job: _PoolJob) -> None:
        job.panic_handle = None
        if job.finished or job.migrated:
            return
        now_ms = self.loop.clock.now_ms
        if job.running_on == "little":
            # Preempt: bank the work done so far, free the core.
            elapsed_ms = now_ms - job.started_ms
            job.remaining_ms = max(
                0.0, job.remaining_ms - elapsed_ms * self.little.speed
            )
            if job.done_handle is not None:
                job.done_handle.cancel()
                job.done_handle = None
            job.running_on = ""
            self._free_little += 1
            self.stats.preemptions += 1
        job.migrated = True
        job.remaining_ms += self.migration_overhead_ms * self.big.speed
        self.stats.migrations += 1
        heapq.heappush(self._big_queue, (job.deadline_at_ms, job.seq, job))
        self._dispatch_big()
        self._dispatch_little()
