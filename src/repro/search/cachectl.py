"""Adaptive shared-L3 way partitioning from online miss-curve estimates.

The paper finds the best L3-vs-cores (and, implicitly, tenant-vs-tenant)
split *offline* by sweeping full Mattson curves; a production tier has to
learn it live.  This module is the actuation side of that loop: an
epoch-based controller reads each co-running leaf workload's SHARDS
miss-ratio curve (:class:`repro.search.simmem.LeafCacheMonitor`) and
re-partitions the shared cache's ways — CAT semantics, each workload
confined to its own ways of every set — to maximize the *predicted*
cluster hit rate for the next epoch.

Two production guardrails temper the optimizer:

* **hysteresis** — the predicted gain over the current allocation must
  clear a threshold before ways actually move, so estimator noise does
  not thrash the partition; and
* **instability fallback** — when any workload's estimate is unhealthy
  (no traffic, too few sampled reuses, or epoch-over-epoch curve drift
  past a bound, i.e. mid phase change), the controller retreats to the
  static even split rather than optimizing against garbage.

Decisions are pure functions of the supplied estimates, and every epoch
is published to the ``repro.search.cachectl.*`` metric family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.search.simmem import EpochEstimate

__all__ = [
    "CacheControlConfig",
    "PartitionDecision",
    "WayPartitionController",
    "static_split",
]


def static_split(total_ways: int, num_workloads: int) -> tuple[int, ...]:
    """The even way split (remainder to the lowest-indexed workloads).

    Deterministic and independent of any estimate — both the controller's
    fallback and the natural baseline an adaptive policy must beat.
    """
    if num_workloads < 1:
        raise ConfigurationError(
            f"need at least one workload, got {num_workloads}"
        )
    if total_ways < num_workloads:
        raise ConfigurationError(
            f"{total_ways} ways cannot cover {num_workloads} workloads"
        )
    base, extra = divmod(total_ways, num_workloads)
    return tuple(
        base + (1 if index < extra else 0) for index in range(num_workloads)
    )


@dataclass(frozen=True)
class CacheControlConfig:
    """Tuning knobs of the way-partitioning controller.

    Units: ``way_lines`` is the capacity of one cache way in 64-byte
    lines (``num_sets`` for a set-associative L3); ``hysteresis`` and
    ``max_drift`` are absolute hit-/miss-ratio fractions.
    """

    total_ways: int
    way_lines: int
    min_ways: int = 1
    hysteresis: float = 0.005
    max_drift: float = 0.25
    min_sampled_reuses: int = 32

    def __post_init__(self) -> None:
        """Validate every knob; see the class docstring for units."""
        if self.total_ways < 1:
            raise ConfigurationError(
                f"total_ways must be >= 1, got {self.total_ways}"
            )
        if self.way_lines < 1:
            raise ConfigurationError(
                f"way_lines must be >= 1, got {self.way_lines}"
            )
        if self.min_ways < 1:
            raise ConfigurationError(
                f"min_ways must be >= 1, got {self.min_ways}"
            )
        if self.hysteresis < 0:
            raise ConfigurationError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if self.max_drift <= 0:
            raise ConfigurationError(
                f"max_drift must be positive, got {self.max_drift}"
            )
        if self.min_sampled_reuses < 0:
            raise ConfigurationError(
                f"min_sampled_reuses must be >= 0, got "
                f"{self.min_sampled_reuses}"
            )


@dataclass(frozen=True)
class PartitionDecision:
    """One epoch's controller output.

    ``predicted_hit_rate`` is the access-weighted cluster hit rate the
    estimates assign to ``allocation`` (``None`` on fallback — there is
    no trusted prediction).  ``moved`` reports whether the allocation
    differs from the previous epoch's.
    """

    epoch: int
    allocation: tuple[int, ...]
    predicted_hit_rate: float | None
    moved: bool
    fallback: bool
    reason: str


class WayPartitionController:
    """Epoch-based greedy way partitioner over per-workload miss curves.

    With two workloads the per-epoch optimization is solved exactly (the
    split space is one-dimensional); with more it falls back to greedy
    marginal-utility assignment (the UCP lookahead-1 heuristic), which
    can stop in a local optimum on non-concave curves — acceptable for a
    controller that re-decides every epoch.
    """

    def __init__(
        self,
        config: CacheControlConfig,
        num_workloads: int,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Start at the static even split; see the class docstring."""
        if num_workloads < 2:
            raise ConfigurationError(
                "way partitioning needs at least two co-running workloads"
            )
        if config.total_ways < num_workloads * config.min_ways:
            raise ConfigurationError(
                f"{config.total_ways} ways cannot give {num_workloads} "
                f"workloads {config.min_ways} ways each"
            )
        self.config = config
        self.num_workloads = num_workloads
        self.static_allocation = static_split(config.total_ways, num_workloads)
        self._allocation = self.static_allocation
        self._epoch = 0
        registry = metrics if metrics is not None else MetricsRegistry()
        family = "repro.search.cachectl"
        self._m_epochs = registry.counter(
            f"{family}.epochs", help="Control epochs decided.", unit="epochs"
        )
        self._m_repartitions = registry.counter(
            f"{family}.repartitions",
            help="Epochs whose decision moved at least one way.",
            unit="epochs",
        )
        self._m_fallbacks = registry.counter(
            f"{family}.fallbacks",
            help="Epochs that retreated to the static split.",
            unit="epochs",
        )
        self._m_predicted = registry.gauge(
            f"{family}.predicted_hit_rate",
            help="Predicted cluster hit rate of the chosen allocation.",
            unit="fraction",
        )
        self._m_ways = registry.gauge(
            f"{family}.ways",
            help="Ways allocated per workload (label `workload`).",
            unit="ways",
        )

    @property
    def allocation(self) -> tuple[int, ...]:
        """Ways each workload holds for the upcoming epoch."""
        return self._allocation

    # ------------------------------------------------------------------

    def _unstable_reason(self, estimate: EpochEstimate | None) -> str | None:
        """Why this estimate cannot be trusted (None when healthy)."""
        if estimate is None or estimate.curve is None:
            return "no curve"
        if estimate.sampled_reuses < self.config.min_sampled_reuses:
            return (
                f"{estimate.sampled_reuses} sampled reuses < "
                f"{self.config.min_sampled_reuses}"
            )
        if (
            math.isfinite(estimate.drift)
            and estimate.drift > self.config.max_drift
        ):
            return f"drift {estimate.drift:.3f} > {self.config.max_drift}"
        return None

    def _predicted_hits(self, estimates: list[EpochEstimate]) -> np.ndarray:
        """``hits[i, w]``: predicted absolute hits of workload ``i`` under
        ``w + min_ways`` ways (access-weighted, so workloads vote with
        their traffic)."""
        config = self.config
        ways_axis = np.arange(
            config.min_ways, config.total_ways + 1, dtype=np.int64
        )
        capacities = ways_axis * config.way_lines
        hits = np.empty((len(estimates), len(ways_axis)))
        for index, estimate in enumerate(estimates):
            assert estimate.curve is not None  # guarded by caller
            hits[index] = estimate.accesses * estimate.curve.hit_rates(
                capacities
            )
        return hits

    def _best_allocation(self, hits: np.ndarray) -> tuple[int, ...]:
        config = self.config
        spare = config.total_ways - self.num_workloads * config.min_ways
        if self.num_workloads == 2:
            best_split, best_value = None, -math.inf
            for extra in range(spare + 1):
                value = hits[0, extra] + hits[1, spare - extra]
                if value > best_value:
                    best_split, best_value = extra, value
            return (
                config.min_ways + best_split,
                config.min_ways + spare - best_split,
            )
        held = [0] * self.num_workloads  # extra ways beyond min_ways
        for _ in range(spare):
            gains = [
                hits[i, held[i] + 1] - hits[i, held[i]]
                for i in range(self.num_workloads)
            ]
            held[int(np.argmax(gains))] += 1  # ties: lowest index wins
        return tuple(config.min_ways + extra for extra in held)

    def _cluster_hit_rate(
        self, hits: np.ndarray, allocation: tuple[int, ...], total: float
    ) -> float:
        config = self.config
        value = sum(
            hits[i, ways - config.min_ways]
            for i, ways in enumerate(allocation)
        )
        return value / total if total > 0 else 0.0

    def update(self, estimates: list[EpochEstimate]) -> PartitionDecision:
        """Decide the next epoch's allocation from this epoch's estimates."""
        if len(estimates) != self.num_workloads:
            raise ConfigurationError(
                f"expected {self.num_workloads} estimates, "
                f"got {len(estimates)}"
            )
        reasons = [self._unstable_reason(estimate) for estimate in estimates]
        if any(reason is not None for reason in reasons):
            detail = "; ".join(
                f"workload {index}: {reason}"
                for index, reason in enumerate(reasons)
                if reason is not None
            )
            decision = self._decide(
                self.static_allocation,
                predicted=None,
                fallback=True,
                reason=f"unstable estimates ({detail})",
            )
        else:
            hits = self._predicted_hits(estimates)
            total = float(sum(e.accesses for e in estimates))
            candidate = self._best_allocation(hits)
            candidate_rate = self._cluster_hit_rate(hits, candidate, total)
            current_rate = self._cluster_hit_rate(
                hits, self._allocation, total
            )
            if (
                candidate != self._allocation
                and candidate_rate - current_rate <= self.config.hysteresis
            ):
                decision = self._decide(
                    self._allocation,
                    predicted=current_rate,
                    fallback=False,
                    reason=(
                        f"held: predicted gain "
                        f"{candidate_rate - current_rate:.4f} within "
                        f"hysteresis {self.config.hysteresis}"
                    ),
                )
            else:
                decision = self._decide(
                    candidate,
                    predicted=candidate_rate,
                    fallback=False,
                    reason=f"optimized (predicted {candidate_rate:.4f})",
                )
        return decision

    def _decide(
        self,
        allocation: tuple[int, ...],
        predicted: float | None,
        fallback: bool,
        reason: str,
    ) -> PartitionDecision:
        moved = allocation != self._allocation
        self._allocation = allocation
        decision = PartitionDecision(
            epoch=self._epoch,
            allocation=allocation,
            predicted_hit_rate=predicted,
            moved=moved,
            fallback=fallback,
            reason=reason,
        )
        self._m_epochs.inc()
        if moved:
            self._m_repartitions.inc()
        if fallback:
            self._m_fallbacks.inc()
        self._m_predicted.set(predicted if predicted is not None else 0.0)
        for index, ways in enumerate(allocation):
            self._m_ways.labels(workload=str(index)).set(ways)
        self._epoch += 1
        return decision
