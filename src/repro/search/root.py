"""Root and intermediate aggregation servers.

Queries "propagate down to all leaf nodes; results propagate up the tree,
with intermediate parents scoring and ordering content" (Figure 1).  A
:class:`RootServer` fans a query out to its children — leaves or other
aggregators — merges the returned hits, and (at the true root) asks the
owning leaves for snippets of the winning documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.errors import ConfigurationError
from repro.search.leaf import LeafServer, SearchHit


@dataclass(frozen=True)
class SearchResultPage:
    """What the front end renders: ranked hits plus snippets."""

    terms: tuple[int, ...]
    hits: tuple[SearchHit, ...]
    snippets: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.hits) != len(self.snippets):
            raise ConfigurationError("hits and snippets must align")


Child = Union["RootServer", LeafServer]


class RootServer:
    """Aggregates results from a subtree of leaves.

    ``generate_snippets`` is enabled only at the true root — intermediate
    parents merge and forward.
    """

    def __init__(
        self,
        children: Sequence[Child],
        generate_snippets: bool = True,
    ) -> None:
        if not children:
            raise ConfigurationError("a root server needs at least one child")
        self.children = list(children)
        self.generate_snippets = generate_snippets
        self.queries_served = 0

    # ------------------------------------------------------------------

    def _collect(self, terms: list[int], top_k: int) -> list[SearchHit]:
        """Fan out and merge; children each return their local top-k."""
        merged: list[SearchHit] = []
        for child in self.children:
            if isinstance(child, LeafServer):
                merged.extend(child.search(terms, top_k=top_k))
            else:
                merged.extend(child._collect(terms, top_k))
        merged.sort(key=lambda h: (-h.score, h.doc_id))
        return merged[:top_k]

    def _leaves(self) -> list[LeafServer]:
        leaves: list[LeafServer] = []
        for child in self.children:
            if isinstance(child, LeafServer):
                leaves.append(child)
            else:
                leaves.extend(child._leaves())
        return leaves

    def search(self, terms: list[int], top_k: int = 10) -> SearchResultPage:
        """Serve one query through the whole subtree."""
        self.queries_served += 1
        hits = self._collect(terms, top_k)
        snippets: list[str] = []
        if self.generate_snippets:
            owner_of = {
                int(doc): leaf
                for leaf in self._leaves()
                for doc in leaf.shard.doc_ids.tolist()
            }
            for hit in hits:
                snippets.append(owner_of[hit.doc_id].snippet(hit.doc_id, terms))
        else:
            snippets = ["" for __ in hits]
        return SearchResultPage(
            terms=tuple(terms),
            hits=tuple(hits),
            snippets=tuple(snippets),
        )

    @classmethod
    def build_tree(
        cls,
        leaves: Sequence[LeafServer],
        fanout: int = 4,
    ) -> "RootServer":
        """Build a balanced aggregation tree over the leaves.

        Intermediate parents are inserted whenever a level exceeds the
        fanout, mirroring the paper's root/intermediate-parent hierarchy.
        """
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        level: list[Child] = list(leaves)
        if not level:
            raise ConfigurationError("need at least one leaf")
        while len(level) > fanout:
            level = [
                cls(level[i : i + fanout], generate_snippets=False)
                for i in range(0, len(level), fanout)
            ]
        return cls(level, generate_snippets=True)
