"""Root and intermediate aggregation servers.

Queries "propagate down to all leaf nodes; results propagate up the tree,
with intermediate parents scoring and ordering content" (Figure 1).  A
:class:`RootServer` fans a query out to its children — leaves or other
aggregators — merges the returned hits, and (at the true root) asks the
owning leaves for snippets of the winning documents.

The fan-out is deadline- and fault-aware.  A query may carry a deadline
(milliseconds of simulated time, per :mod:`repro._units` convention);
each aggregation level spends ``policy.overhead_ms`` of that budget and
passes the rest to its children.  Leaf RPC latencies and failures are
drawn from an optional :class:`~repro.search.faults.FaultInjector`;
transient errors are retried and slow calls hedged per the
:class:`~repro.search.policies.ServingPolicy`.  Leaves that miss the
deadline or fail outright are simply left out of the merge: the query
returns a *degraded* :class:`SearchResultPage` (``complete`` False,
``leaves_answered < leaves_total``) instead of an error — the
graceful-degradation behaviour real serving trees exhibit under the
paper's §IV-B latency SLO.

Observability: every aggregation level opens a ``root.aggregate`` span
under the front end's query span, and every leaf call a ``leaf.rpc``
span tagged with the shard, attempt count, hedging decision, and
outcome.  Fan-out counters (``repro.search.root.*``) are shared by all
levels of one tree through the cluster's
:class:`~repro.obs.metrics.MetricsRegistry` — retries, hedges, deadline
misses and outright leaf failures are visible per run without parsing
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    LeafUnavailableError,
    ServingError,
)
from repro.obs.metrics import NULL_REGISTRY, Counter, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, SpanContext, Tracer
from repro.search.faults import HEDGE_ATTEMPT_OFFSET, FaultInjector
from repro.search.leaf import LeafServer, SearchHit
from repro.search.policies import ServingPolicy


@dataclass(frozen=True)
class SearchResultPage:
    """What the front end renders: ranked hits plus snippets.

    ``complete`` is False when some leaves' results are missing (deadline
    expiry or failure); ``leaves_answered``/``leaves_total`` quantify the
    damage and ``latency_ms`` is the simulated serving latency (None when
    the query ran without a latency model).
    """

    terms: tuple[int, ...]
    hits: tuple[SearchHit, ...]
    snippets: tuple[str, ...]
    complete: bool = True
    leaves_answered: int = 0
    leaves_total: int = 0
    latency_ms: float | None = None

    def __post_init__(self) -> None:
        if len(self.hits) != len(self.snippets):
            raise ConfigurationError("hits and snippets must align")
        if not 0 <= self.leaves_answered <= max(self.leaves_total, 0):
            raise ConfigurationError(
                f"leaves_answered {self.leaves_answered} inconsistent with "
                f"leaves_total {self.leaves_total}"
            )


Child = Union["RootServer", LeafServer]

#: Robustness defaults shared by every aggregator not given a policy.
_DEFAULT_POLICY = ServingPolicy()


def _merge_hits(hits: Iterable[SearchHit], top_k: int) -> list[SearchHit]:
    """Merge child results: dedupe by document, rank, truncate.

    A document replicated on several shards must appear once, scored by
    its best replica; ties break on ascending ``doc_id`` so the merged
    order is deterministic regardless of child arrival order.
    """
    best: dict[int, SearchHit] = {}
    for hit in hits:
        current = best.get(hit.doc_id)
        if current is None or hit.score > current.score:
            best[hit.doc_id] = hit
    merged = sorted(best.values(), key=lambda h: (-h.score, h.doc_id))
    return merged[:top_k]


@dataclass
class _SubtreeReply:
    """One subtree's contribution to a fan-out query."""

    hits: list[SearchHit]
    answered: int
    total: int
    #: When this subtree's merged reply was ready, ms after query start.
    completion_ms: float
    missed_deadline: bool
    answered_leaves: list[LeafServer] = field(default_factory=list)


class RootServer:
    """Aggregates results from a subtree of leaves.

    ``generate_snippets`` is enabled only at the true root — intermediate
    parents merge and forward.  All nodes of one tree should share a
    ``metrics`` registry (``build_tree`` wires this) so the fan-out
    counters aggregate across levels.
    """

    def __init__(
        self,
        children: Sequence[Child],
        generate_snippets: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not children:
            raise ConfigurationError("a root server needs at least one child")
        self.children = list(children)
        self.generate_snippets = generate_snippets
        registry = metrics if metrics is not None else NULL_REGISTRY
        # Per-instance: only the true root's search() runs, so the last
        # registration (build_tree constructs the true root last) is the
        # one that counts.
        self._queries = Counter(
            "repro.search.root.queries",
            help="Queries aggregated by the root server.",
            unit="queries",
        )
        if metrics is not None and generate_snippets:
            metrics.register(self._queries, replace=True)
        # Shared families: incremented at every level of the tree.
        self._leaf_rpcs = registry.counter(
            "repro.search.root.leaf_rpcs",
            help="Logical leaf RPCs issued by aggregators (all tree levels).",
            unit="rpcs",
        )
        self._retries = registry.counter(
            "repro.search.root.retries",
            help="Extra leaf attempts after transient errors.",
            unit="rpcs",
        )
        self._hedged = registry.counter(
            "repro.search.root.hedged_rpcs",
            help="Backup (hedged) leaf requests issued for slow primaries.",
            unit="rpcs",
        )
        self._deadline_misses = registry.counter(
            "repro.search.root.deadline_misses",
            help="Leaf replies dropped because the deadline budget expired.",
            unit="rpcs",
        )
        self._leaf_failures = registry.counter(
            "repro.search.root.leaf_failures",
            help="Leaf RPCs that never answered (failures, retries exhausted).",
            unit="rpcs",
        )

    @property
    def queries_served(self) -> int:
        """Queries this aggregator has served (registry-backed)."""
        return self._queries.value

    # ------------------------------------------------------------------

    def _leaf_reply(
        self,
        leaf: LeafServer,
        terms: list[int],
        top_k: int,
        budget_ms: float | None,
        injector: FaultInjector | None,
        policy: ServingPolicy,
        tracer: Tracer = NULL_TRACER,
        parent_span: SpanContext | None = None,
        query_key: int | None = None,
    ) -> tuple[list[SearchHit] | None, float, bool]:
        """One leaf RPC with retries and hedging.

        Returns ``(hits, completion_ms, missed_deadline)``; ``hits`` is
        None when the leaf never answered (failure or deadline).  The
        leaf's shard is only scored when its reply would actually arrive
        in time — lost work is lost.  ``query_key`` selects the
        injector's stable keyed RNG streams (per leaf, query, attempt)
        so the same scenario replayed through the event-driven engine
        draws identical faults and latencies.

        Units: ``budget_ms`` is the remaining deadline budget in
        milliseconds of simulated time (None = no deadline).
        """
        self._leaf_rpcs.inc()
        span = None
        if tracer.enabled:
            start_ms = injector.clock.now_ms if injector is not None else 0.0
            span = tracer.start_span(
                "leaf.rpc", parent=parent_span, start_ms=start_ms
            ).tag(shard=leaf.shard.shard_id)
        if injector is None:
            hits = leaf.search(terms, top_k=top_k)
            if span is not None:
                span.tag(attempts=1, hedged=False, outcome="ok").finish(0.0)
            return hits, 0.0, False
        leaf_id = leaf.shard.shard_id
        retry = policy.retry
        elapsed = 0.0
        hedged_any = False
        for attempt in range(1, retry.max_attempts + 1):
            if attempt > 1:
                self._retries.inc()
            try:
                latency = injector.leaf_latency_ms(
                    leaf_id, query_key=query_key, attempt=attempt
                )
            except LeafUnavailableError as error:
                elapsed += error.after_ms
                if budget_ms is not None and elapsed > budget_ms:
                    self._deadline_misses.inc()
                    if span is not None:
                        span.tag(
                            attempts=attempt, hedged=hedged_any, outcome="deadline"
                        ).finish(budget_ms)
                    return None, budget_ms, True
                if not error.transient or attempt == retry.max_attempts:
                    self._leaf_failures.inc()
                    if span is not None:
                        span.tag(
                            attempts=attempt, hedged=hedged_any, outcome="failed"
                        ).finish(elapsed)
                    return None, elapsed, False
                elapsed += retry.backoff_ms
                continue
            if policy.hedge is not None and latency > policy.hedge.after_ms:
                self._hedged.inc()
                hedged_any = True
                try:
                    hedged = injector.leaf_latency_ms(
                        leaf_id,
                        query_key=query_key,
                        attempt=HEDGE_ATTEMPT_OFFSET + attempt,
                    )
                except LeafUnavailableError:
                    hedged = None  # the hedge itself failed; keep the primary
                if hedged is not None:
                    latency = min(latency, policy.hedge.after_ms + hedged)
            elapsed += latency
            if budget_ms is not None and elapsed > budget_ms:
                self._deadline_misses.inc()
                if span is not None:
                    span.tag(
                        attempts=attempt, hedged=hedged_any, outcome="deadline"
                    ).finish(budget_ms)
                return None, budget_ms, True
            hits = leaf.search(terms, top_k=top_k)
            if span is not None:
                span.tag(
                    attempts=attempt, hedged=hedged_any, outcome="ok"
                ).finish(elapsed)
            return hits, elapsed, False
        self._leaf_failures.inc()
        if span is not None:
            span.tag(
                attempts=retry.max_attempts, hedged=hedged_any, outcome="failed"
            ).finish(elapsed)
        return None, elapsed, False

    def _collect(
        self,
        terms: list[int],
        top_k: int,
        budget_ms: float | None = None,
        injector: FaultInjector | None = None,
        policy: ServingPolicy = _DEFAULT_POLICY,
        tracer: Tracer = NULL_TRACER,
        parent_span: SpanContext | None = None,
        query_key: int | None = None,
    ) -> _SubtreeReply:
        """Fan out and merge; children each return their local top-k.

        ``budget_ms`` is the remaining deadline budget for this subtree;
        each level keeps ``policy.overhead_ms`` for its own merge and
        hands the rest down.

        Units: ``budget_ms`` is milliseconds of simulated time.
        """
        span = None
        level_ctx = parent_span
        if tracer.enabled:
            start_ms = injector.clock.now_ms if injector is not None else 0.0
            span = tracer.start_span(
                "root.aggregate", parent=parent_span, start_ms=start_ms
            ).tag(children=len(self.children), snippets=self.generate_snippets)
            level_ctx = span.context
        child_budget = (
            None if budget_ms is None else max(0.0, budget_ms - policy.overhead_ms)
        )
        merged: list[SearchHit] = []
        answered_leaves: list[LeafServer] = []
        answered = total = 0
        completion = 0.0
        missed = False
        for child in self.children:
            if isinstance(child, LeafServer):
                total += 1
                hits, ready_ms, child_missed = self._leaf_reply(
                    child,
                    terms,
                    top_k,
                    child_budget,
                    injector,
                    policy,
                    tracer=tracer,
                    parent_span=level_ctx,
                    query_key=query_key,
                )
                if hits is not None:
                    answered += 1
                    answered_leaves.append(child)
                    merged.extend(hits)
            else:
                reply = child._collect(
                    terms,
                    top_k,
                    child_budget,
                    injector,
                    policy,
                    tracer=tracer,
                    parent_span=level_ctx,
                    query_key=query_key,
                )
                total += reply.total
                answered += reply.answered
                answered_leaves.extend(reply.answered_leaves)
                merged.extend(reply.hits)
                ready_ms, child_missed = reply.completion_ms, reply.missed_deadline
            completion = max(completion, ready_ms)
            missed = missed or child_missed
        if missed and budget_ms is not None:
            # A straggler forced this level to wait out its entire budget.
            completion = budget_ms
        elif injector is not None:
            completion += policy.overhead_ms
        if span is not None:
            span.tag(
                answered=answered, total=total, missed_deadline=missed
            ).finish(completion)
        return _SubtreeReply(
            hits=_merge_hits(merged, top_k),
            answered=answered,
            total=total,
            completion_ms=completion,
            missed_deadline=missed,
            answered_leaves=answered_leaves,
        )

    def _leaves(self) -> list[LeafServer]:
        leaves: list[LeafServer] = []
        for child in self.children:
            if isinstance(child, LeafServer):
                leaves.append(child)
            else:
                leaves.extend(child._leaves())
        return leaves

    def search(
        self,
        terms: list[int],
        top_k: int = 10,
        deadline_ms: float | None = None,
        injector: FaultInjector | None = None,
        policy: ServingPolicy | None = None,
        on_incomplete: str = "degrade",
        tracer: Tracer | None = None,
        parent_span: SpanContext | None = None,
        query_key: int | None = None,
    ) -> SearchResultPage:
        """Serve one query through the whole subtree.

        Without an injector this is the ideal, zero-latency path (every
        leaf answers, ``latency_ms`` is None).  With one, leaves may
        spike, error, or die; ``on_incomplete`` selects between returning
        a degraded page (``"degrade"``, the default) and raising
        (``"raise"`` → :class:`DeadlineExceededError` when the deadline
        expired, :class:`ServingError` when leaves failed outright).

        ``tracer``/``parent_span`` continue the front end's query span;
        leave them unset to serve untraced.  ``query_key`` (the query's
        arrival sequence number) keys the injector's per-(leaf, query,
        attempt) RNG streams; None falls back to shared call-order draws.

        Units: ``deadline_ms`` is milliseconds of simulated time.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        if on_incomplete not in ("degrade", "raise"):
            raise ConfigurationError(
                f"on_incomplete must be 'degrade' or 'raise', got {on_incomplete!r}"
            )
        policy = policy or _DEFAULT_POLICY
        self._queries.inc()
        reply = self._collect(
            terms,
            top_k,
            deadline_ms,
            injector,
            policy,
            tracer=tracer if tracer is not None else NULL_TRACER,
            parent_span=parent_span,
            query_key=query_key,
        )
        complete = reply.answered == reply.total
        if not complete and on_incomplete == "raise":
            if reply.missed_deadline:
                assert deadline_ms is not None
                raise DeadlineExceededError(deadline_ms, reply.answered, reply.total)
            raise ServingError(
                f"{reply.total - reply.answered} of {reply.total} leaves "
                "failed and retries were exhausted"
            )
        hits = reply.hits
        snippets: list[str] = []
        if self.generate_snippets:
            owner_of = {
                int(doc): leaf
                for leaf in reply.answered_leaves
                for doc in leaf.shard.doc_ids.tolist()
            }
            for hit in hits:
                snippets.append(owner_of[hit.doc_id].snippet(hit.doc_id, terms))
        else:
            snippets = ["" for __ in hits]
        return SearchResultPage(
            terms=tuple(terms),
            hits=tuple(hits),
            snippets=tuple(snippets),
            complete=complete,
            leaves_answered=reply.answered,
            leaves_total=reply.total,
            latency_ms=None if injector is None else reply.completion_ms,
        )

    @classmethod
    def build_tree(
        cls,
        leaves: Sequence[LeafServer],
        fanout: int = 4,
        metrics: MetricsRegistry | None = None,
    ) -> "RootServer":
        """Build a balanced aggregation tree over the leaves.

        Intermediate parents are inserted whenever a level exceeds the
        fanout, mirroring the paper's root/intermediate-parent hierarchy.
        All levels share ``metrics`` so the ``repro.search.root.*``
        counters aggregate across the whole tree.
        """
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        level: list[Child] = list(leaves)
        if not level:
            raise ConfigurationError("need at least one leaf")
        while len(level) > fanout:
            level = [
                cls(level[i : i + fanout], generate_snippets=False, metrics=metrics)
                for i in range(0, len(level), fanout)
            ]
        return cls(level, generate_snippets=True, metrics=metrics)
