"""Allocated-footprint model of a search leaf (the paper's Figure 4).

Figure 4 reports steady-state *allocated* memory per segment as cores scale
from 6 to 36: code and stack are tens-to-hundreds of MiB, the heap is an
order of magnitude larger, and — the key observation — heap allocation
grows sublinearly with cores because major heap structures are shared
between search threads.  The shard (100s of GiB) takes all remaining
memory and is core-count-independent.

The model is calibrated to the figure's reading: heap ~1.6 GiB at 6 cores
rising to ~2.8 GiB at 36, code constant, stacks linear per thread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._units import GiB, KiB, MiB
from repro.errors import ConfigurationError
from repro.memtrace.trace import Segment


@dataclass(frozen=True)
class FootprintModel:
    """Per-segment allocated bytes as a function of active core count."""

    code_bytes: int = 160 * MiB
    stack_bytes_per_core: int = 8 * MiB
    #: Heap = shared base + per-core growth with a sublinear exponent.
    heap_shared_bytes: float = 0.77 * GiB
    heap_per_sqrt_core_bytes: float = 0.34 * GiB
    heap_exponent: float = 0.5
    shard_bytes: int = 200 * GiB

    def __post_init__(self) -> None:
        if not 0 < self.heap_exponent <= 1:
            raise ConfigurationError("heap_exponent must be in (0, 1]")

    def heap(self, cores: int) -> float:
        """Heap footprint in bytes (sublinear in cores)."""
        self._check(cores)
        return (
            self.heap_shared_bytes
            + self.heap_per_sqrt_core_bytes * cores**self.heap_exponent
        )

    def stack(self, cores: int) -> float:
        """Total stack footprint in bytes (one stack per thread)."""
        self._check(cores)
        return float(self.stack_bytes_per_core * cores)

    def code(self, cores: int) -> float:
        """Code footprint in bytes (shared text, core-count independent)."""
        self._check(cores)
        return float(self.code_bytes)

    def shard(self, cores: int) -> float:
        """Shard footprint in bytes (all remaining memory)."""
        self._check(cores)
        return float(self.shard_bytes)

    def segment(self, segment: Segment, cores: int) -> float:
        """Footprint of one segment."""
        return {
            Segment.CODE: self.code,
            Segment.HEAP: self.heap,
            Segment.SHARD: self.shard,
            Segment.STACK: self.stack,
        }[segment](cores)

    def heap_scaling_exponent(self, low: int, high: int) -> float:
        """Empirical growth exponent of the heap between two core counts.

        Near 0.3–0.5 for the calibrated model — the paper's "grows slower
        [than linearly] as there are several shared data-structures".
        """
        if low < 1 or high <= low:
            raise ConfigurationError("need 1 <= low < high")
        return math.log(self.heap(high) / self.heap(low)) / math.log(high / low)

    @staticmethod
    def _check(cores: int) -> None:
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
