"""Per-query latency model for the serving tree.

The paper evaluates throughput but notes (§IV-B) that it "also evaluated
per-query average and tail latency, and found it remained well within the
margins of our service level objective" after rebalancing.  This model
makes that checkable: leaves are M/M/1 queues whose service rate scales
with per-leaf throughput (cores × IPC), and a query's latency is the
*maximum* over its fan-out — the classic tail-at-scale amplification.

For an M/M/1 queue at utilization ρ with mean service time S, the sojourn
time is exponential with mean S/(1-ρ), so the p-quantile is
``-ln(1-p) · S / (1-ρ)``; a fan-out-N query's p-quantile needs the
per-leaf ``p**(1/N)`` quantile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SaturatedQueueError
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    log_spaced_bounds,
)

#: Outcome-latency buckets: 0.1 ms .. 100 s of simulated time.
_OUTCOME_BOUNDS = log_spaced_bounds(lo=0.1, hi=100_000.0, per_decade=4)


class Utilization(float):
    """A utilization ρ that knows whether the offered load saturated it.

    Behaves as a plain float (clamped to [0, 1]) everywhere a ρ is
    expected, while carrying the overload diagnosis: ``saturated`` is
    True when the raw offered-to-capacity ratio reached 1, and
    ``offered`` preserves that unclamped ratio (1.3 means 30% more load
    than the design can drain).  :meth:`QueryLatencyModel.
    utilization_for_load` returns these instead of raising, so callers
    can *represent* overload — the closed-form quantile helpers are the
    ones that must refuse it (:class:`~repro.errors.SaturatedQueueError`).
    """

    saturated: bool
    offered: float

    def __new__(cls, offered: float) -> "Utilization":
        value = super().__new__(cls, min(float(offered), 1.0))
        value.saturated = offered >= 1.0
        value.offered = float(offered)
        return value


def _check_utilization(utilization: float) -> None:
    """Reject ρ outside [0, 1) for the closed-form helpers.

    Negative utilization is a configuration mistake; ρ >= 1 is the
    *saturated regime* and raises the dedicated
    :class:`~repro.errors.SaturatedQueueError` (carrying ρ) so callers
    can distinguish "no stationary tail exists" from "bad argument".
    """
    if utilization < 0:
        raise ConfigurationError(
            f"utilization must be >= 0, got {utilization}"
        )
    if utilization >= 1:
        offered = getattr(utilization, "offered", utilization)
        raise SaturatedQueueError(float(offered))


@dataclass(frozen=True)
class QueryLatencyModel:
    """Latency of fan-out queries over queueing leaves."""

    #: Mean leaf service time at the baseline design, milliseconds.
    base_service_ms: float = 8.0
    #: Number of leaves a query fans out to.
    fanout: int = 32
    #: Fixed network + aggregation time per query, milliseconds.
    overhead_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.base_service_ms <= 0 or self.overhead_ms < 0:
            raise ConfigurationError("invalid latency parameters")
        if self.fanout < 1:
            raise ConfigurationError("fanout must be >= 1")

    # ------------------------------------------------------------------

    def service_ms(self, relative_throughput: float = 1.0) -> float:
        """Leaf service time for a design with the given throughput ratio.

        A design serving 1.27x the QPS per leaf (the paper's combined
        design) processes each query 1.27x faster.
        """
        if relative_throughput <= 0:
            raise ConfigurationError("relative_throughput must be positive")
        return self.base_service_ms / relative_throughput

    def leaf_quantile_ms(
        self, p: float, utilization: float, relative_throughput: float = 1.0
    ) -> float:
        """The p-quantile of one leaf's sojourn time at a utilization.

        Raises :class:`~repro.errors.SaturatedQueueError` (carrying ρ)
        at ρ >= 1 — a saturated queue has no stationary quantiles.
        """
        if not 0 < p < 1:
            raise ConfigurationError(f"p must be in (0, 1), got {p}")
        _check_utilization(utilization)
        service = self.service_ms(relative_throughput)
        return -math.log(1.0 - p) * service / (1.0 - utilization)

    def query_quantile_ms(
        self, p: float, utilization: float, relative_throughput: float = 1.0
    ) -> float:
        """The p-quantile of a fan-out query (max over leaves)."""
        per_leaf_p = p ** (1.0 / self.fanout)
        return self.overhead_ms + self.leaf_quantile_ms(
            per_leaf_p, utilization, relative_throughput
        )

    def sample_leaf_ms(
        self,
        rng: np.random.Generator,
        utilization: float = 0.0,
        relative_throughput: float = 1.0,
    ) -> float:
        """Draw one leaf sojourn time from the M/M/1 model.

        This is the stochastic counterpart of :meth:`leaf_quantile_ms` —
        the fault-injection substrate uses it so simulated per-query
        latencies and the analytic tail formulas describe the *same*
        distribution (checkable in tests).  Raises
        :class:`~repro.errors.SaturatedQueueError` at ρ >= 1: the sojourn
        distribution does not exist there (use the event-driven engine to
        *simulate* overload instead).
        """
        _check_utilization(utilization)
        mean = self.service_ms(relative_throughput) / (1.0 - utilization)
        return float(rng.exponential(mean))

    def mean_query_ms(
        self, utilization: float, relative_throughput: float = 1.0
    ) -> float:
        """Expected fan-out query latency (harmonic max of exponentials).

        Raises :class:`~repro.errors.SaturatedQueueError` at ρ >= 1 (the
        mean diverges).
        """
        _check_utilization(utilization)
        service = self.service_ms(relative_throughput) / (1.0 - utilization)
        harmonic = sum(1.0 / k for k in range(1, self.fanout + 1))
        return self.overhead_ms + service * harmonic

    # ------------------------------------------------------------------

    def utilization_for_load(
        self, offered_load: float, relative_throughput: float = 1.0
    ) -> Utilization:
        """Leaf utilization when offering ``offered_load`` (1.0 = the
        baseline design's capacity) to a design with the given throughput.

        Overload is *representable*: at offered load >= capacity the
        returned :class:`Utilization` is clamped to 1.0 with
        ``saturated`` True and ``offered`` preserving the raw ratio —
        no exception.  Only the closed-form quantile helpers refuse a
        saturated ρ (:class:`~repro.errors.SaturatedQueueError`).
        """
        if offered_load < 0:
            raise ConfigurationError("offered_load must be >= 0")
        return Utilization(offered_load / relative_throughput)

    def tail_within_slo(
        self,
        slo_ms: float,
        offered_load: float,
        relative_throughput: float = 1.0,
        p: float = 0.99,
    ) -> bool:
        """Does the design keep the p-tail within the SLO at this load?

        A saturated design (offered load >= capacity) has an unbounded
        tail, so the answer is simply False — not an exception.
        """
        utilization = self.utilization_for_load(offered_load, relative_throughput)
        if utilization.saturated:
            return False
        return self.query_quantile_ms(p, utilization, relative_throughput) <= slo_ms


class LatencyAccumulator:
    """Collects per-query outcomes from the robust serving path.

    The front end returns :class:`~repro.search.root.SearchResultPage`
    objects stamped with simulated latency and completeness; feeding them
    through :meth:`observe` yields the serving-behaviour counterparts of
    §IV-B's tail-latency check — availability, degraded-result rate, and
    latency quantiles — comparable against :class:`QueryLatencyModel`'s
    analytic predictions.

    Outcome counters (``complete``/``degraded``/``failed``) are
    registry-backed behind the original attribute names; the exact
    latency list is kept alongside the bucketed registry histogram so
    ``quantile_ms`` stays exact (the histogram's quantiles are
    conservative upper bounds, fine for dashboards, not for asserting
    SLO math).
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        """Create an empty accumulator, optionally registry-published.

        The accumulator owns its counters (one accumulator per serving
        run); with a ``metrics`` registry they appear under
        ``repro.search.outcomes.*`` and the latest run wins the names.
        """
        self.latencies_ms: list[float] = []
        self._complete = Counter(
            "repro.search.outcomes.complete",
            help="Queries answered by every leaf.",
            unit="queries",
        )
        self._degraded = Counter(
            "repro.search.outcomes.degraded",
            help="Queries answered by a strict, non-empty subset of leaves.",
            unit="queries",
        )
        self._failed = Counter(
            "repro.search.outcomes.failed",
            help="Queries that returned no results at all (every leaf lost).",
            unit="queries",
        )
        self._latency = Histogram(
            "repro.search.outcomes.latency_ms",
            help="Simulated per-query latency of the robust serving path.",
            unit="ms",
            bounds=_OUTCOME_BOUNDS,
        )
        if metrics is not None:
            for metric in (
                self._complete,
                self._degraded,
                self._failed,
                self._latency,
            ):
                metrics.register(metric, replace=True)

    @property
    def complete(self) -> int:
        """Queries every leaf answered (registry-backed)."""
        return self._complete.value

    @property
    def degraded(self) -> int:
        """Queries served from an incomplete leaf set (registry-backed)."""
        return self._degraded.value

    @property
    def failed(self) -> int:
        """Queries that returned no results at all (registry-backed)."""
        return self._failed.value

    def observe(self, page) -> None:
        """Record one served page (duck-typed to avoid an import cycle)."""
        latency_ms = 0.0 if page.latency_ms is None else float(page.latency_ms)
        self.latencies_ms.append(latency_ms)
        self._latency.observe(latency_ms)
        if page.complete:
            self._complete.inc()
        elif page.leaves_answered == 0:
            self._failed.inc()
        else:
            self._degraded.inc()

    # ------------------------------------------------------------------

    @property
    def queries(self) -> int:
        return len(self.latencies_ms)

    @property
    def availability(self) -> float:
        """Fraction of queries that returned at least partial results."""
        if not self.queries:
            return 1.0
        return 1.0 - self.failed / self.queries

    @property
    def degraded_rate(self) -> float:
        """Fraction of queries served from an incomplete leaf set."""
        if not self.queries:
            return 0.0
        return (self.degraded + self.failed) / self.queries

    def mean_ms(self) -> float:
        if not self.latencies_ms:
            raise ConfigurationError("no queries observed yet")
        return float(np.mean(self.latencies_ms))

    def quantile_ms(self, p: float) -> float:
        """Empirical p-quantile of observed query latency."""
        if not 0 < p < 1:
            raise ConfigurationError(f"p must be in (0, 1), got {p}")
        if not self.latencies_ms:
            raise ConfigurationError("no queries observed yet")
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, math.ceil(p * len(ordered)) - 1)
        return ordered[index]

    def p99_ms(self) -> float:
        return self.quantile_ms(0.99)
