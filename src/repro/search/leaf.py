"""Leaf server: score an index shard for a query, emitting a memory trace.

The leaf is the paper's focus — it is where the shard scans, the heap
scoring structures, and the large code footprint live.  Query processing
follows the standard document-at-a-time outline:

1. look up each query term's posting list (heap dictionary access);
2. decode its postings, streaming through the compressed blob in the
   **shard** segment (sequential line touches, no temporal reuse);
3. score candidates with BM25 using per-doc metadata in the **heap**
   (doc lengths, static rank — Zipf-reused across queries because popular
   terms recur), accumulating into a hot scratch region;
4. select the top-k (stack-resident partial sort).

Each stage also charges instructions and touches its function's **code**
range, so the emitted trace carries all four segments of §III-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._units import KiB
from repro.errors import ConfigurationError
from repro.memtrace.trace import AccessKind, Segment
from repro.obs.metrics import MetricsRegistry
from repro.search.indexer import IndexShard
from repro.search.scoring import Bm25Parameters, bm25_score
from repro.search.simmem import SimulatedMemory, TraceRecorder

_LINE_BYTES = 64

#: Instruction-cost model per unit of work (coarse, Haswell-ish).
_INSTR_PER_POSTING_DECODE = 6
_INSTR_PER_POSTING_SCORE = 14
_INSTR_PER_TERM_LOOKUP = 120
_INSTR_PER_TOPK_CANDIDATE = 4
_INSTR_QUERY_OVERHEAD = 600


@dataclass(frozen=True)
class SearchHit:
    """One scored result."""

    doc_id: int
    score: float


class LeafServer:
    """Scores its shard; optionally records every memory access."""

    def __init__(
        self,
        shard: IndexShard,
        memory: SimulatedMemory | None = None,
        recorder: TraceRecorder | None = None,
        bm25: Bm25Parameters = Bm25Parameters(),
        accumulator_slots: int = 1 << 15,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if accumulator_slots <= 0:
            raise ConfigurationError("accumulator_slots must be positive")
        self.shard = shard
        self.memory = memory
        self.recorder = recorder
        self.bm25 = bm25
        self._rng = np.random.default_rng(seed)
        # Work counters are labeled children of cluster-wide families
        # (``repro.search.leaf.*``, label ``shard``): each leaf owns its
        # child, the family value sums across leaves.  Without a shared
        # registry a private one keeps the per-leaf accessors live.
        registry = metrics if metrics is not None else MetricsRegistry()
        shard_label = str(shard.shard_id)
        self._queries = registry.counter(
            "repro.search.leaf.queries",
            help="Queries scored by leaf servers (per shard).",
            unit="queries",
        ).labels(shard=shard_label)
        self._postings_scored = registry.counter(
            "repro.search.leaf.postings_scored",
            help="Postings decoded and scored (per shard).",
            unit="postings",
        ).labels(shard=shard_label)
        self._postings_skipped = registry.counter(
            "repro.search.leaf.postings_skipped",
            help="Postings skipped by early termination (per shard).",
            unit="postings",
        ).labels(shard=shard_label)

        self._accumulator_addr = -1
        self._term_dict_addr = -1
        self._code_addr: dict[str, int] = {}
        if memory is not None:
            self._accumulator_addr = memory.alloc(
                Segment.HEAP, 8 * accumulator_slots, label="score-accumulators"
            )
            self._term_dict_addr = memory.alloc(
                Segment.HEAP,
                max(64, 48 * len(shard.postings)),
                label="term-dictionary",
            )
            for stage, size in (
                ("parse", 2048),
                ("lookup", 4096),
                ("decode", 8192),
                ("score", 16384),
                ("topk", 4096),
            ):
                self._code_addr[stage] = memory.alloc(
                    Segment.CODE, size, label=f"leaf-code:{stage}"
                )
        self._accumulator_slots = accumulator_slots
        self._term_rank = {
            term: rank for rank, term in enumerate(sorted(shard.postings))
        }

    @property
    def queries_served(self) -> int:
        """Queries this leaf has scored (registry-backed)."""
        return self._queries.value

    @property
    def postings_scored(self) -> int:
        """Postings this leaf has decoded and scored (registry-backed)."""
        return self._postings_scored.value

    @property
    def postings_skipped(self) -> int:
        """Postings early termination let this leaf skip (registry-backed)."""
        return self._postings_skipped.value

    # ------------------------------------------------------------------
    # Instrumentation helpers (no-ops when not recording)
    # ------------------------------------------------------------------

    def _code(self, stage: str, fraction: float, instructions: int) -> None:
        recorder = self.recorder
        if recorder is None:
            return
        recorder.execute(instructions)
        addr = self._code_addr.get(stage, -1)
        if addr < 0:
            return
        size = max(_LINE_BYTES, int(fraction * (4 * KiB)))
        recorder.touch(addr, size, AccessKind.INSTR, Segment.CODE)

    def _touch(self, addr: int, size: int, kind: AccessKind, segment: Segment) -> None:
        if self.recorder is not None and addr >= 0:
            self.recorder.touch(addr, size, kind, segment)

    # ------------------------------------------------------------------

    def search(
        self,
        terms: list[int],
        top_k: int = 10,
        early_termination: bool = False,
    ) -> list[SearchHit]:
        """Score the shard for a bag of term ids; return the best hits.

        ``early_termination`` enables a Moffat–Zobel-style *quit* strategy:
        terms are processed in decreasing idf order, and scoring stops once
        the remaining terms' combined score upper bound cannot displace the
        current k-th candidate.  It is approximate (already-admitted
        candidates forgo small boosts) but slashes posting traffic for
        queries mixing rare and stopword-class terms — one lever behind the
        shard's scan-length distribution.
        """
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        self._queries.inc()
        self._code("parse", 0.5, _INSTR_QUERY_OVERHEAD)

        shard = self.shard
        if early_termination:
            terms = sorted(
                terms,
                key=lambda t: -self._term_upper_bound(t),
            )
        remaining_bound = sum(self._term_upper_bound(t) for t in terms)

        scores: dict[int, float] = {}
        for position, term in enumerate(terms):
            if early_termination and len(scores) >= top_k:
                kth = sorted(scores.values(), reverse=True)[top_k - 1]
                if remaining_bound < kth:
                    for skipped in terms[position:]:
                        posting = shard.postings.get(skipped)
                        if posting is not None:
                            self._postings_skipped.inc(posting.doc_count)
                    break
            remaining_bound -= self._term_upper_bound(term)
            posting = shard.postings.get(term)
            self._code("lookup", 0.6, _INSTR_PER_TERM_LOOKUP)
            if self._term_dict_addr >= 0:
                rank = self._term_rank.get(term, 0)
                self._touch(
                    self._term_dict_addr + 48 * rank,
                    48,
                    AccessKind.LOAD,
                    Segment.HEAP,
                )
            if posting is None or posting.doc_count == 0:
                continue

            local_ids, freqs = posting.decode()
            self._postings_scored.inc(posting.doc_count)
            self._code(
                "decode", 1.0, _INSTR_PER_POSTING_DECODE * posting.doc_count
            )
            self._touch(
                posting.shard_addr,
                max(1, posting.size_bytes),
                AccessKind.LOAD,
                Segment.SHARD,
            )

            lengths = shard.doc_lengths[local_ids]
            term_scores = bm25_score(
                freqs,
                lengths,
                shard.average_length,
                shard.total_docs,
                posting.doc_count,
                self.bm25,
            )
            term_scores = term_scores * (1.0 + 0.1 * shard.static_rank[local_ids])
            self._code(
                "score", 1.0, _INSTR_PER_POSTING_SCORE * posting.doc_count
            )
            if self.recorder is not None:
                self._record_scoring_accesses(local_ids)

            for local, s in zip(local_ids.tolist(), term_scores.tolist()):
                doc = int(shard.doc_ids[local])
                scores[doc] = scores.get(doc, 0.0) + s

        self._code("topk", 0.8, _INSTR_PER_TOPK_CANDIDATE * len(scores))
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
        return [SearchHit(doc_id=d, score=s) for d, s in ranked]

    def _term_upper_bound(self, term: int) -> float:
        """Maximum BM25 contribution any document can get from one term."""
        posting = self.shard.postings.get(term)
        if posting is None or posting.doc_count == 0:
            return 0.0
        from repro.search.scoring import idf

        # tf-saturation limit is (k1 + 1); static rank boosts up to 10%.
        return (
            idf(self.shard.total_docs, posting.doc_count)
            * (self.bm25.k1 + 1.0)
            * 1.1
        )

    def _record_scoring_accesses(self, local_ids: np.ndarray) -> None:
        """Heap touches of the scoring stage, vectorized."""
        meta = self.shard.doc_length_addr + 8 * local_ids
        rank = self.shard.static_rank_addr + 8 * local_ids
        acc = self._accumulator_addr + 8 * (local_ids % self._accumulator_slots)
        recorder = self.recorder
        recorder.touch_many(
            (meta // _LINE_BYTES) * _LINE_BYTES, AccessKind.LOAD, Segment.HEAP
        )
        recorder.touch_many(
            (rank // _LINE_BYTES) * _LINE_BYTES, AccessKind.LOAD, Segment.HEAP
        )
        recorder.touch_many(
            (acc // _LINE_BYTES) * _LINE_BYTES, AccessKind.STORE, Segment.HEAP
        )

    # ------------------------------------------------------------------

    def snippet(self, doc_id: int, terms: list[int]) -> str:
        """A result snippet for one of this shard's documents.

        Touches the document's metadata the way snippet generation re-reads
        the stored document.
        """
        local = self.shard.local_index_of().get(doc_id)
        if local is None:
            raise ConfigurationError(
                f"doc {doc_id} is not in shard {self.shard.shard_id}"
            )
        self._code("score", 0.3, 200)
        self._touch(
            self.shard.doc_length_addr + 8 * local, 8, AccessKind.LOAD, Segment.HEAP
        )
        return f"doc{doc_id}: …{' '.join(f't{t}' for t in terms[:3])}…"
