"""Var-byte compressed posting lists.

Postings are (doc_id, term_frequency) pairs sorted by doc id; doc ids are
delta-encoded and both fields var-byte compressed — the classic layout whose
sequential decode is exactly the shard streaming behaviour the paper
observes (§III-B: sequential runs, no temporal locality at small caches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def _varbyte_encode_values(values: np.ndarray) -> bytearray:
    """Var-byte encode non-negative integers (7 data bits per byte,
    high bit marks continuation)."""
    out = bytearray()
    for v in values.tolist():
        if v < 0:
            raise ConfigurationError(f"cannot varbyte-encode negative {v}")
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return out


def _varbyte_decode_values(data: bytes, count: int) -> tuple[np.ndarray, int]:
    """Decode ``count`` var-byte integers; return (values, bytes consumed)."""
    values = np.empty(count, np.int64)
    pos = 0
    for i in range(count):
        value = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise ConfigurationError("truncated varbyte stream")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        values[i] = value
    return values, pos


def encode_postings(doc_ids: np.ndarray, frequencies: np.ndarray) -> bytes:
    """Encode sorted (doc_id, frequency) postings into a compressed blob.

    Layout: interleaved varbyte (delta_doc_id, frequency) pairs.
    """
    if len(doc_ids) != len(frequencies):
        raise ConfigurationError("doc_ids and frequencies must align")
    if len(doc_ids) == 0:
        return b""
    doc_ids = np.asarray(doc_ids, np.int64)
    frequencies = np.asarray(frequencies, np.int64)
    if (np.diff(doc_ids) <= 0).any():
        raise ConfigurationError("doc_ids must be strictly increasing")
    if (frequencies < 1).any():
        raise ConfigurationError("frequencies must be >= 1")
    deltas = np.empty_like(doc_ids)
    deltas[0] = doc_ids[0]
    deltas[1:] = np.diff(doc_ids)
    interleaved = np.empty(2 * len(doc_ids), np.int64)
    interleaved[0::2] = deltas
    interleaved[1::2] = frequencies
    return bytes(_varbyte_encode_values(interleaved))


def decode_postings(blob: bytes, count: int) -> tuple[np.ndarray, np.ndarray]:
    """Decode ``count`` postings back to (doc_ids, frequencies)."""
    if count == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    interleaved, __ = _varbyte_decode_values(blob, 2 * count)
    deltas = interleaved[0::2]
    frequencies = interleaved[1::2]
    return np.cumsum(deltas), frequencies


@dataclass(frozen=True)
class PostingList:
    """A term's compressed postings plus its placement in shard memory."""

    term_id: int
    doc_count: int
    blob: bytes
    #: Simulated shard address where the blob is stored (set by the indexer).
    shard_addr: int = -1

    def __post_init__(self) -> None:
        if self.doc_count < 0:
            raise ConfigurationError("doc_count must be non-negative")

    @property
    def size_bytes(self) -> int:
        return len(self.blob)

    def decode(self) -> tuple[np.ndarray, np.ndarray]:
        """(doc_ids, frequencies) of this list."""
        return decode_postings(self.blob, self.doc_count)
