"""Front-end web server with result caching.

"Popular queries can consume a significant amount of resources, so caching
is used in various levels of the hierarchy to improve throughput and
latency" (§II-A).  The front end normalizes the query, consults its result
cache, and only forwards misses to the root.  The cache is also why leaf
traffic loses query-level locality — repeated queries are absorbed here,
leaving the leaves the long Zipf tail (the paper's explanation for the
shard's poor temporal locality, §III-B).

The front end is also where robustness policy is applied: queries may
carry a deadline (ms), outcomes are stamped on the returned page, and —
critically — *degraded* pages are never cached, so one leaf hiccup cannot
poison the result cache for the lifetime of an entry.

Observability: the front end owns the *query* span — one
``frontend.query`` span per request, tagged with the cache outcome and
the page's completeness, parenting the ``root.aggregate`` / ``leaf.rpc``
spans underneath (see :mod:`repro.obs.tracing`).  Its counters
(queries, degraded pages, cache hits/misses/evictions) are
registry-backed :class:`~repro.obs.metrics.Counter` objects behind the
same attribute names the pre-registry code exposed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Hashable

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, log_spaced_bounds
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.search.documents import Vocabulary
from repro.search.faults import FaultInjector
from repro.search.policies import ServingPolicy
from repro.search.root import RootServer, SearchResultPage
from repro.search.tokenizer import terms_for_query

#: Latency-histogram buckets: 0.1 ms .. 100 s of simulated time.
_LATENCY_BOUNDS = log_spaced_bounds(lo=0.1, hi=100_000.0, per_decade=4)


class ResultCache:
    """A bounded LRU cache of query results.

    ``capacity=0`` is a legitimate configuration — a disabled cache that
    stores nothing and counts every lookup as a miss (useful when an
    experiment must see every query reach the leaves).

    ``hits``/``misses``/``evictions`` are cumulative counters for the
    cache's lifetime; with a ``metrics`` registry they are published as
    ``repro.search.frontend.cache.*`` (latest cache instance wins the
    name, so snapshots describe the current serving topology).
    """

    def __init__(
        self, capacity: int = 4096, metrics: MetricsRegistry | None = None
    ) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, SearchResultPage] = OrderedDict()
        self._hits = Counter(
            "repro.search.frontend.cache.hits",
            help="Result-cache lookups answered from the cache.",
            unit="lookups",
        )
        self._misses = Counter(
            "repro.search.frontend.cache.misses",
            help="Result-cache lookups forwarded to the root.",
            unit="lookups",
        )
        self._evictions = Counter(
            "repro.search.frontend.cache.evictions",
            help="LRU evictions caused by capacity pressure.",
            unit="entries",
        )
        if metrics is not None:
            for counter in (self._hits, self._misses, self._evictions):
                metrics.register(counter, replace=True)

    def get(self, key: Hashable) -> SearchResultPage | None:
        page = self._entries.get(key)
        if page is None:
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return page

    def put(self, key: Hashable, page: SearchResultPage) -> None:
        """Insert or refresh an entry; never grows past ``capacity``.

        Overwriting an existing key updates the stored page in place (no
        spurious eviction of a neighbour) and counts as a refresh, not an
        eviction.
        """
        if self.capacity == 0:
            return
        self._entries[key] = page
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions.inc()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Cumulative cache hits (registry-backed)."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Cumulative cache misses (registry-backed)."""
        return self._misses.value

    @property
    def evictions(self) -> int:
        """Cumulative LRU evictions (registry-backed)."""
        return self._evictions.value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FrontendServer:
    """Entry point of the serving system (Figure 1's front-end web server)."""

    def __init__(
        self,
        root: RootServer,
        vocabulary: Vocabulary | None = None,
        cache: ResultCache | None = None,
        injector: FaultInjector | None = None,
        policy: ServingPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.root = root
        self.vocabulary = vocabulary
        # `cache or ResultCache()` would discard an explicitly passed
        # *empty* cache: ResultCache defines __len__, so one with no
        # entries (any fresh cache, and any capacity-0 cache forever) is
        # falsy.  Compare against None.
        self.cache = cache if cache is not None else ResultCache(metrics=metrics)
        self.injector = injector
        self.policy = policy or ServingPolicy()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._queries = Counter(
            "repro.search.frontend.queries",
            help="Queries received by the front end.",
            unit="queries",
        )
        self._degraded = Counter(
            "repro.search.frontend.degraded",
            help="Pages served from an incomplete leaf set.",
            unit="pages",
        )
        self._latency = Histogram(
            "repro.search.frontend.latency_ms",
            help="Simulated end-to-end query latency (fault-injected runs).",
            unit="ms",
            bounds=_LATENCY_BOUNDS,
        )
        if metrics is not None:
            metrics.register(self._queries, replace=True)
            metrics.register(self._degraded, replace=True)
            metrics.register(self._latency, replace=True)

    @property
    def queries_received(self) -> int:
        """Queries this front end has accepted (registry-backed)."""
        return self._queries.value

    @property
    def degraded_served(self) -> int:
        """Degraded pages this front end has served (registry-backed)."""
        return self._degraded.value

    def search_terms(
        self,
        terms: list[int],
        top_k: int = 10,
        deadline_ms: float | None = None,
        on_incomplete: str = "degrade",
    ) -> SearchResultPage:
        """Serve a pre-tokenized query (term ids).

        Cache hits are free in simulated time (the paper's point: the
        caches absorb popular queries before they cost fan-out work), so
        a cached page is restamped with zero latency.  Only *complete*
        pages are cached.
        """
        self._queries.inc()
        # Arrival sequence number: the stable key for the injector's
        # per-(leaf, query, attempt) RNG streams.
        query_key = self.queries_received - 1
        tracer = self.tracer
        span = None
        if tracer.enabled:
            start_ms = (
                self.injector.clock.now_ms if self.injector is not None else 0.0
            )
            span = tracer.start_span("frontend.query", start_ms=start_ms).tag(
                terms=len(terms), top_k=top_k, **self.policy.as_tags()
            )
            if deadline_ms is not None:
                span.tag(deadline_ms=deadline_ms)
        # Normalize: order-independent bag of terms, like a query
        # rewriter.  The result depends on top_k as well — a page cached
        # for top_k=10 must not answer a top_k=20 request.
        key = (tuple(sorted(terms)), top_k)
        cached = self.cache.get(key)
        if cached is not None:
            if span is not None:
                span.tag(cache="hit", complete=cached.complete).finish(0.0)
            if cached.latency_ms is None:
                return cached
            return replace(cached, latency_ms=0.0)
        page = self.root.search(
            list(terms),
            top_k=top_k,
            deadline_ms=deadline_ms,
            injector=self.injector,
            policy=self.policy,
            on_incomplete=on_incomplete,
            tracer=tracer,
            parent_span=span.context if span is not None else None,
            query_key=query_key,
        )
        if page.complete:
            self.cache.put(key, page)
        else:
            self._degraded.inc()
        if self.injector is not None and page.latency_ms is not None:
            self._latency.observe(page.latency_ms)
            # Closed-loop client: simulated time advances as queries finish.
            self.injector.clock.advance(page.latency_ms)
        if span is not None:
            span.tag(
                cache="miss",
                complete=page.complete,
                leaves_answered=page.leaves_answered,
                leaves_total=page.leaves_total,
            ).finish(page.latency_ms if page.latency_ms is not None else 0.0)
        return page

    def search_text(
        self,
        query: str,
        top_k: int = 10,
        deadline_ms: float | None = None,
    ) -> SearchResultPage:
        """Serve a text query through the tokenizer (needs a vocabulary)."""
        if self.vocabulary is None:
            raise ConfigurationError(
                "text queries need a vocabulary; use search_terms instead"
            )
        terms = terms_for_query(query, self.vocabulary)
        return self.search_terms(terms, top_k=top_k, deadline_ms=deadline_ms)
