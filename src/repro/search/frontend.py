"""Front-end web server with result caching.

"Popular queries can consume a significant amount of resources, so caching
is used in various levels of the hierarchy to improve throughput and
latency" (§II-A).  The front end normalizes the query, consults its result
cache, and only forwards misses to the root.  The cache is also why leaf
traffic loses query-level locality — repeated queries are absorbed here,
leaving the leaves the long Zipf tail (the paper's explanation for the
shard's poor temporal locality, §III-B).

The front end is also where robustness policy is applied: queries may
carry a deadline (ms), outcomes are stamped on the returned page, and —
critically — *degraded* pages are never cached, so one leaf hiccup cannot
poison the result cache for the lifetime of an entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Hashable

from repro.errors import ConfigurationError
from repro.search.documents import Vocabulary
from repro.search.faults import FaultInjector
from repro.search.policies import ServingPolicy
from repro.search.root import RootServer, SearchResultPage
from repro.search.tokenizer import terms_for_query


class ResultCache:
    """A bounded LRU cache of query results.

    ``capacity=0`` is a legitimate configuration — a disabled cache that
    stores nothing and counts every lookup as a miss (useful when an
    experiment must see every query reach the leaves).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, SearchResultPage] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> SearchResultPage | None:
        page = self._entries.get(key)
        if page is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return page

    def put(self, key: Hashable, page: SearchResultPage) -> None:
        """Insert or refresh an entry; never grows past ``capacity``.

        Overwriting an existing key updates the stored page in place (no
        spurious eviction of a neighbour) and counts as a refresh, not an
        eviction.
        """
        if self.capacity == 0:
            return
        self._entries[key] = page
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FrontendServer:
    """Entry point of the serving system (Figure 1's front-end web server)."""

    def __init__(
        self,
        root: RootServer,
        vocabulary: Vocabulary | None = None,
        cache: ResultCache | None = None,
        injector: FaultInjector | None = None,
        policy: ServingPolicy | None = None,
    ) -> None:
        self.root = root
        self.vocabulary = vocabulary
        # `cache or ResultCache()` would discard an explicitly passed
        # *empty* cache: ResultCache defines __len__, so one with no
        # entries (any fresh cache, and any capacity-0 cache forever) is
        # falsy.  Compare against None.
        self.cache = cache if cache is not None else ResultCache()
        self.injector = injector
        self.policy = policy or ServingPolicy()
        self.queries_received = 0
        self.degraded_served = 0

    def search_terms(
        self,
        terms: list[int],
        top_k: int = 10,
        deadline_ms: float | None = None,
        on_incomplete: str = "degrade",
    ) -> SearchResultPage:
        """Serve a pre-tokenized query (term ids).

        Cache hits are free in simulated time (the paper's point: the
        caches absorb popular queries before they cost fan-out work), so
        a cached page is restamped with zero latency.  Only *complete*
        pages are cached.
        """
        self.queries_received += 1
        # Normalize: order-independent bag of terms, like a query
        # rewriter.  The result depends on top_k as well — a page cached
        # for top_k=10 must not answer a top_k=20 request.
        key = (tuple(sorted(terms)), top_k)
        cached = self.cache.get(key)
        if cached is not None:
            if cached.latency_ms is None:
                return cached
            return replace(cached, latency_ms=0.0)
        page = self.root.search(
            list(terms),
            top_k=top_k,
            deadline_ms=deadline_ms,
            injector=self.injector,
            policy=self.policy,
            on_incomplete=on_incomplete,
        )
        if page.complete:
            self.cache.put(key, page)
        else:
            self.degraded_served += 1
        if self.injector is not None and page.latency_ms is not None:
            # Closed-loop client: simulated time advances as queries finish.
            self.injector.clock.advance(page.latency_ms)
        return page

    def search_text(
        self,
        query: str,
        top_k: int = 10,
        deadline_ms: float | None = None,
    ) -> SearchResultPage:
        """Serve a text query through the tokenizer (needs a vocabulary)."""
        if self.vocabulary is None:
            raise ConfigurationError(
                "text queries need a vocabulary; use search_terms instead"
            )
        terms = terms_for_query(query, self.vocabulary)
        return self.search_terms(terms, top_k=top_k, deadline_ms=deadline_ms)
