"""Front-end web server with result caching.

"Popular queries can consume a significant amount of resources, so caching
is used in various levels of the hierarchy to improve throughput and
latency" (§II-A).  The front end normalizes the query, consults its result
cache, and only forwards misses to the root.  The cache is also why leaf
traffic loses query-level locality — repeated queries are absorbed here,
leaving the leaves the long Zipf tail (the paper's explanation for the
shard's poor temporal locality, §III-B).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.search.documents import Vocabulary
from repro.search.root import RootServer, SearchResultPage
from repro.search.tokenizer import terms_for_query


class ResultCache:
    """A bounded LRU cache of query results."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, ...], SearchResultPage] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[int, ...]) -> SearchResultPage | None:
        page = self._entries.get(key)
        if page is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return page

    def put(self, key: tuple[int, ...], page: SearchResultPage) -> None:
        self._entries[key] = page
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FrontendServer:
    """Entry point of the serving system (Figure 1's front-end web server)."""

    def __init__(
        self,
        root: RootServer,
        vocabulary: Vocabulary | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        self.root = root
        self.vocabulary = vocabulary
        self.cache = cache or ResultCache()
        self.queries_received = 0

    def search_terms(self, terms: list[int], top_k: int = 10) -> SearchResultPage:
        """Serve a pre-tokenized query (term ids)."""
        self.queries_received += 1
        # Normalize: order-independent bag of terms, like a query rewriter.
        key = tuple(sorted(terms))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        page = self.root.search(list(terms), top_k=top_k)
        self.cache.put(key, page)
        return page

    def search_text(self, query: str, top_k: int = 10) -> SearchResultPage:
        """Serve a text query through the tokenizer (needs a vocabulary)."""
        if self.vocabulary is None:
            raise ConfigurationError(
                "text queries need a vocabulary; use search_terms instead"
            )
        terms = terms_for_query(query, self.vocabulary)
        return self.search_terms(terms, top_k=top_k)
