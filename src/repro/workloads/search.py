"""Production-search profiles: services S1/S2/S3, leaf and root roles.

The paper cannot publish workload internals, so these profiles are shaped
from what Table I and §II–III do reveal:

* leaf nodes score index shards: big code footprints (L2-instr MPKI 12–14),
  heavy data-dependent branching (branch MPKI 6–9), large heap reuse plus
  streaming shard scans (L3-load MPKI 1.8–2.2);
* root nodes aggregate and re-rank results: higher L3 data pressure
  (L3-load MPKI 3–4.2 — request-scoped result payloads instead of a mapped
  shard), somewhat lower branch MPKI (4.7–5.4), similar code footprints.

Knob-to-metric mapping: ``code_zipf`` and the code touch rate drive
L1-I/L2-instr MPKI; heap/shard rates and zipfs drive L3-load MPKI and the
Figure 6 curves; ``data_dependent_fraction`` drives branch MPKI.  The S1
leaf values were calibrated against the composed-hierarchy engine at
scale 1/16 (see EXPERIMENTS.md for measured-vs-paper).
"""

from __future__ import annotations

from dataclasses import replace

from repro._units import GiB, KiB, MiB
from repro.cachesim.composed import SegmentRates
from repro.cpu.branch import BranchWorkloadConfig
from repro.memtrace.synthetic import WorkloadConfig
from repro.workloads.profiles import PaperReference, WorkloadProfile, register

# The common skeleton of a search leaf; services tweak it below.
_LEAF_MEMORY = WorkloadConfig(
    code_footprint=4 * MiB,
    code_zipf=1.60,
    heap_pool_bytes=1 * GiB,
    heap_zipf=1.00,
    shard_bytes=128 * GiB,
    shard_term_zipf=1.10,
)

_LEAF_RATES = SegmentRates(code=100.0, heap=3.6, shard=1.1, stack=4.0)

_LEAF_BRANCHES = BranchWorkloadConfig(
    static_branches=8192,
    biased_fraction=0.6855,
    loop_fraction=0.25,
    data_dependent_fraction=0.0645,
    biased_rate=0.02,
    loop_trip_mean=12.0,
    branches_per_ki=150.0,
)

S1_LEAF = register(
    WorkloadProfile(
        name="s1-leaf",
        description="Largest search service, leaf role (the paper's focus)",
        memory=_LEAF_MEMORY,
        branches=_LEAF_BRANCHES,
        rates=_LEAF_RATES,
        reference=PaperReference(
            ipc=1.34, l3_load_mpki=2.20, l2_instr_mpki=11.83, branch_mpki=8.98
        ),
        family="search-fleet",
    )
)

S2_LEAF = register(
    WorkloadProfile(
        name="s2-leaf",
        description="Second search service, leaf role",
        memory=replace(
            _LEAF_MEMORY,
            code_footprint=4 * MiB + 512 * KiB,
            code_zipf=1.56,
            heap_zipf=1.05,
        ),
        branches=replace(
            _LEAF_BRANCHES,
            data_dependent_fraction=0.030,
            biased_fraction=0.720,
            biased_rate=0.015,
            loop_trip_mean=16.0,
        ),
        rates=replace(_LEAF_RATES, heap=3.2, shard=0.95),
        reference=PaperReference(
            ipc=1.63, l3_load_mpki=1.89, l2_instr_mpki=12.44, branch_mpki=6.17
        ),
        family="search-fleet",
    )
)

S3_LEAF = register(
    WorkloadProfile(
        name="s3-leaf",
        description="Third search service, leaf role",
        memory=replace(
            _LEAF_MEMORY,
            code_footprint=5 * MiB,
            code_zipf=1.54,
            heap_zipf=1.04,
        ),
        branches=replace(
            _LEAF_BRANCHES, data_dependent_fraction=0.049, biased_fraction=0.701
        ),
        rates=replace(_LEAF_RATES, heap=3.0, shard=0.9),
        reference=PaperReference(
            ipc=1.46, l3_load_mpki=1.78, l2_instr_mpki=14.10, branch_mpki=7.99
        ),
        family="search-fleet",
    )
)

# Roots aggregate scored results: no mapped shard, bigger mutable heap with
# weaker locality (request-scoped result payloads), tamer branches.
_ROOT_MEMORY = replace(
    _LEAF_MEMORY,
    heap_pool_bytes=2 * GiB,
    heap_zipf=0.72,
    shard_bytes=8 * GiB,
)

_ROOT_RATES = SegmentRates(code=100.0, heap=4.6, shard=0.4, stack=4.0)

_ROOT_BRANCHES = replace(
    _LEAF_BRANCHES,
    data_dependent_fraction=0.0235,
    biased_fraction=0.7965,
    loop_fraction=0.18,
    biased_rate=0.012,
    loop_trip_mean=20.0,
)

S1_ROOT = register(
    WorkloadProfile(
        name="s1-root",
        description="Largest search service, root role",
        memory=_ROOT_MEMORY,
        branches=_ROOT_BRANCHES,
        rates=_ROOT_RATES,
        reference=PaperReference(
            ipc=1.03, l3_load_mpki=4.20, l2_instr_mpki=12.02, branch_mpki=4.71
        ),
        family="search-fleet",
    )
)

S2_ROOT = register(
    WorkloadProfile(
        name="s2-root",
        description="Second search service, root role",
        memory=replace(_ROOT_MEMORY, heap_zipf=0.80, code_footprint=7 * MiB),
        branches=_ROOT_BRANCHES,
        rates=replace(_ROOT_RATES, heap=3.6),
        reference=PaperReference(
            ipc=1.14, l3_load_mpki=3.05, l2_instr_mpki=19.62, branch_mpki=4.84
        ),
        family="search-fleet",
    )
)

S3_ROOT = register(
    WorkloadProfile(
        name="s3-root",
        description="Third search service, root role",
        memory=replace(_ROOT_MEMORY, heap_zipf=0.79, code_footprint=5 * MiB),
        branches=replace(
            _ROOT_BRANCHES, data_dependent_fraction=0.032, biased_fraction=0.788
        ),
        rates=replace(_ROOT_RATES, heap=3.9),
        reference=PaperReference(
            ipc=1.08, l3_load_mpki=3.19, l2_instr_mpki=13.97, branch_mpki=5.37
        ),
        family="search-fleet",
    )
)

# Lab runs of S1 on the two platforms (Table I's PLT1/PLT2 columns).  The
# workload is S1; the metric differences come from the platform hierarchy
# (block size, cache capacities), which the experiments model by simulating
# the same profile on each platform's HierarchyConfig.
S1_LEAF_PLT1 = register(
    WorkloadProfile(
        name="s1-leaf-plt1",
        description="S1 leaf measured in the lab on PLT1 (Haswell)",
        memory=_LEAF_MEMORY,
        branches=replace(
            _LEAF_BRANCHES, data_dependent_fraction=0.074, biased_fraction=0.676
        ),
        rates=replace(_LEAF_RATES, heap=3.8, shard=1.2),
        reference=PaperReference(
            ipc=1.27, l3_load_mpki=2.43, l2_instr_mpki=10.78, branch_mpki=9.47
        ),
        family="search-lab",
    )
)

S1_LEAF_PLT2 = register(
    WorkloadProfile(
        name="s1-leaf-plt2",
        description="S1 leaf measured in the lab on PLT2 (POWER8)",
        memory=_LEAF_MEMORY,
        branches=replace(
            _LEAF_BRANCHES, data_dependent_fraction=0.096, biased_fraction=0.654
        ),
        # Per-128B-line touch rates: the bigger block halves line touches
        # for sequential code/shard and the bigger L2 absorbs instructions.
        rates=SegmentRates(code=55.0, heap=3.4, shard=0.7, stack=2.5),
        reference=PaperReference(
            ipc=1.92, l3_load_mpki=1.15, l2_instr_mpki=2.53, branch_mpki=11.50
        ),
        family="search-lab",
    )
)
