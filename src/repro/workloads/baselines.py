"""Calibration baselines: SPEC CPU2006-like and CloudSuite-like profiles.

Table I contrasts search against four SPEC CPU2006 workloads and the
Lucene-based CloudSuite v3 Web Search.  These profiles reproduce each
baseline's published *microarchitectural signature*, not its computation:

* ``400.perlbench`` — compute-bound, cache-friendly, modest code.
* ``429.mcf`` — extreme memory-bound pointer chasing: tiny code, giant
  low-locality heap (L3 load MPKI ~57), poor IPC.
* ``445.gobmk`` — branchy game-tree search (branch MPKI 18.4), the most
  code-intensive SPEC member, still 3.6x below search's L2-instr MPKI.
* ``471.omnetpp`` — memory-bound discrete-event simulation.
* ``cloudsuite-websearch`` — the academic search benchmark whose working
  set essentially fits on chip (all MPKIs near zero) — the paper's point
  that it under-represents production search.

The knobs are the same as the search profiles': heap rate x (1 - L3 hit)
sets L3 load MPKI; code footprint/zipf set L2-instr MPKI;
``data_dependent_fraction`` sets branch MPKI.
"""

from __future__ import annotations

from repro._units import GiB, KiB, MiB
from repro.cachesim.composed import SegmentRates
from repro.cpu.branch import BranchWorkloadConfig
from repro.memtrace.synthetic import WorkloadConfig
from repro.workloads.profiles import PaperReference, WorkloadProfile, register

PERLBENCH = register(
    WorkloadProfile(
        name="spec-perlbench",
        description="400.perlbench: compute-bound interpreter, cache-friendly",
        memory=WorkloadConfig(
            code_footprint=1 * MiB,
            code_zipf=2.50,
            heap_pool_bytes=64 * MiB,
            heap_zipf=1.30,
            shard_bytes=256 * MiB,
            shard_term_zipf=1.3,
        ),
        branches=BranchWorkloadConfig(
            static_branches=4096,
            biased_fraction=0.9203,
            loop_fraction=0.07,
            data_dependent_fraction=0.0097,
            biased_rate=0.004,
            loop_trip_mean=48.0,
            branches_per_ki=200.0,
        ),
        rates=SegmentRates(code=100.0, heap=16.0, shard=0.05, stack=6.0),
        reference=PaperReference(
            ipc=2.72, l3_load_mpki=0.48, l2_instr_mpki=0.58, branch_mpki=1.80
        ),
        family="spec",
    )
)

MCF = register(
    WorkloadProfile(
        name="spec-mcf",
        description="429.mcf: pointer-chasing over a ~2 GiB graph, memory-bound",
        memory=WorkloadConfig(
            code_footprint=128 * KiB,
            code_zipf=2.60,
            heap_pool_bytes=2 * GiB,
            heap_zipf=0.10,
            heap_object_bytes=64,
            shard_bytes=256 * MiB,
        ),
        branches=BranchWorkloadConfig(
            static_branches=1024,
            biased_fraction=0.680,
            loop_fraction=0.22,
            data_dependent_fraction=0.100,
            biased_rate=0.02,
            branches_per_ki=190.0,
        ),
        rates=SegmentRates(code=100.0, heap=62.0, shard=0.05, stack=3.0),
        reference=PaperReference(
            ipc=0.15, l3_load_mpki=56.92, l2_instr_mpki=0.31, branch_mpki=11.32
        ),
        family="spec",
    )
)

GOBMK = register(
    WorkloadProfile(
        name="spec-gobmk",
        description="445.gobmk: branchy Go engine, the most code-heavy SPEC",
        memory=WorkloadConfig(
            code_footprint=2 * MiB,
            code_zipf=2.00,
            heap_pool_bytes=48 * MiB,
            heap_zipf=1.00,
            shard_bytes=256 * MiB,
        ),
        branches=BranchWorkloadConfig(
            static_branches=16384,
            biased_fraction=0.548,
            loop_fraction=0.34,
            data_dependent_fraction=0.112,
            biased_rate=0.03,
            branches_per_ki=180.0,
        ),
        rates=SegmentRates(code=100.0, heap=10.0, shard=0.05, stack=6.0),
        reference=PaperReference(
            ipc=1.43, l3_load_mpki=0.29, l2_instr_mpki=3.02, branch_mpki=18.40
        ),
        family="spec",
    )
)

OMNETPP = register(
    WorkloadProfile(
        name="spec-omnetpp",
        description="471.omnetpp: discrete-event simulation, memory-bound",
        memory=WorkloadConfig(
            code_footprint=512 * KiB,
            code_zipf=2.50,
            heap_pool_bytes=768 * MiB,
            heap_zipf=0.30,
            shard_bytes=256 * MiB,
        ),
        branches=BranchWorkloadConfig(
            static_branches=2048,
            biased_fraction=0.770,
            loop_fraction=0.19,
            data_dependent_fraction=0.040,
            biased_rate=0.009,
            branches_per_ki=200.0,
        ),
        rates=SegmentRates(code=100.0, heap=30.0, shard=0.05, stack=4.0),
        reference=PaperReference(
            ipc=0.30, l3_load_mpki=24.92, l2_instr_mpki=0.63, branch_mpki=5.32
        ),
        family="spec",
    )
)

CLOUDSUITE_WEBSEARCH = register(
    WorkloadProfile(
        name="cloudsuite-websearch",
        description="CloudSuite v3 Web Search (Lucene/Solr-class): fits on chip",
        memory=WorkloadConfig(
            code_footprint=1 * MiB,
            code_zipf=2.80,
            heap_pool_bytes=24 * MiB,
            heap_zipf=1.40,
            shard_bytes=2 * GiB,
            shard_term_zipf=1.35,
        ),
        branches=BranchWorkloadConfig(
            static_branches=2048,
            biased_fraction=0.9573,
            loop_fraction=0.04,
            data_dependent_fraction=0.0027,
            biased_rate=0.002,
            loop_trip_mean=64.0,
            branches_per_ki=140.0,
        ),
        rates=SegmentRates(code=100.0, heap=8.0, shard=0.3, stack=4.0),
        reference=PaperReference(
            ipc=1.61, l3_load_mpki=0.03, l2_instr_mpki=0.28, branch_mpki=0.51
        ),
        family="cloudsuite",
    )
)
