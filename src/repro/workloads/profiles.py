"""Profile dataclasses and the profile registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachesim.composed import SegmentRates
from repro.cpu.branch import BranchWorkloadConfig
from repro.errors import ConfigurationError
from repro.memtrace.synthetic import WorkloadConfig


@dataclass(frozen=True)
class PaperReference:
    """A Table I row: the paper's measured values for one workload."""

    ipc: float
    l3_load_mpki: float
    l2_instr_mpki: float
    branch_mpki: float


@dataclass(frozen=True)
class WorkloadProfile:
    """A complete synthetic stand-in for one workload."""

    name: str
    description: str
    memory: WorkloadConfig
    branches: BranchWorkloadConfig
    #: Nominal unique-line touch rates per kilo-instruction, used when the
    #: profile's streams are composed through a hierarchy.
    rates: SegmentRates = field(default_factory=SegmentRates)
    reference: PaperReference | None = None
    #: Grouping used by Table I: "search-fleet", "search-lab", "spec",
    #: "cloudsuite".
    family: str = "search-fleet"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile name must be non-empty")


_REGISTRY: dict[str, WorkloadProfile] = {}


def register(profile: WorkloadProfile) -> WorkloadProfile:
    """Add a profile to the global registry (module-import time)."""
    if profile.name in _REGISTRY:
        raise ConfigurationError(f"duplicate profile name {profile.name!r}")
    _REGISTRY[profile.name] = profile
    return profile


def get_profile(name: str) -> WorkloadProfile:
    """Look up a registered profile by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown profile {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_profiles(family: str | None = None) -> list[WorkloadProfile]:
    """All registered profiles, optionally restricted to one family."""
    _ensure_loaded()
    profiles = list(_REGISTRY.values())
    if family is not None:
        profiles = [p for p in profiles if p.family == family]
    return profiles


def _ensure_loaded() -> None:
    # Profile modules self-register on import; import them lazily to avoid
    # a cycle with this module.
    from repro.workloads import baselines, search  # noqa: F401
