"""Workload profiles: production search services and calibration baselines.

A profile bundles the synthetic memory-trace configuration and the branch
population of one workload, plus the paper's Table I reference numbers so
experiments can report paper-vs-measured side by side.
"""

from repro.workloads.profiles import (
    PaperReference,
    WorkloadProfile,
    all_profiles,
    get_profile,
)
from repro.workloads import search, baselines

__all__ = [
    "PaperReference",
    "WorkloadProfile",
    "all_profiles",
    "get_profile",
    "search",
    "baselines",
]
