"""Hardware-platform specifications (Table II)."""

from repro.platforms.specs import PlatformSpec, PLT1, PLT2

__all__ = ["PlatformSpec", "PLT1", "PLT2"]
