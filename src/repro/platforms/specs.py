"""The paper's two lab platforms (Table II).

PLT1 is an Intel Haswell-class 2-socket server, PLT2 an IBM POWER8-class
one.  The spec objects carry the Table II attributes plus the calibrated
per-platform models (cache hierarchy, SMT curve, TLB configurations) used
throughout the experiments.

The ``PLT1``/``PLT2`` constants are *derived* from the declarative specs
in :mod:`repro.hw.catalog` — Table II is data, and this module's class is
one adapter view of it.  The cache hierarchy is likewise built from the
spec's own geometry fields; it used to dispatch on the magic name string
``"PLT1"``, which silently handed any renamed or third platform PLT2's
hierarchy.  The measured SMT and TLB models cannot be derived from
geometry, so they key on an explicit ``calibration`` field instead of the
name, and an unknown calibration raises rather than falling back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import GiB, KiB, MiB, format_size
from repro.cachesim.cache import CacheGeometry
from repro.cachesim.hierarchy import CacheLevelConfig, HierarchyConfig
from repro.cpu.smt import SmtModel
from repro.cpu.tlb import TlbConfig
from repro.errors import ConfigurationError

#: Measured-model families a platform may calibrate against.
_SMT_CALIBRATIONS = {
    "haswell": SmtModel.plt1_calibrated,
    "power8": SmtModel.plt2_calibrated,
}


def _haswell_tlbs() -> tuple[TlbConfig, TlbConfig]:
    return TlbConfig.plt1_small_pages(), TlbConfig.plt1_huge_pages()


def _power8_tlbs() -> tuple[TlbConfig, TlbConfig]:
    return TlbConfig.plt2_small_pages(), TlbConfig.plt2_huge_pages()


_TLB_CALIBRATIONS = {"haswell": _haswell_tlbs, "power8": _power8_tlbs}


@dataclass(frozen=True)
class PlatformSpec:
    """One hardware platform, as characterized in Table II."""

    name: str
    microarchitecture: str
    sockets: int
    cores_per_socket: int
    smt_ways: int
    cache_block_bytes: int
    l1i_bytes: int
    l1d_bytes: int
    l2_bytes: int
    l3_bytes_per_socket: int
    memory_bytes: int = 256 * GiB
    small_page_bytes: int = 4 * KiB
    huge_page_bytes: int = 2 * MiB
    issue_width: int = 4
    frequency_ghz: float = 2.5
    l1_assoc: int = 8
    l2_assoc: int = 8
    l3_assoc: int = 20
    #: Which measured model family (SMT curve, TLBs) the platform uses.
    calibration: str = "haswell"

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt_ways < 1:
            raise ConfigurationError("socket/core/SMT counts must be >= 1")
        if min(self.l1_assoc, self.l2_assoc, self.l3_assoc) < 1:
            raise ConfigurationError("cache associativities must be >= 1")
        if self.calibration not in _SMT_CALIBRATIONS:
            raise ConfigurationError(
                f"unknown calibration {self.calibration!r}; expected one of "
                f"{sorted(_SMT_CALIBRATIONS)}"
            )

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.smt_ways

    def hierarchy(self) -> HierarchyConfig:
        """The platform's cache hierarchy, built from its own fields."""
        block = self.cache_block_bytes

        def level(name: str, size: int, assoc: int, shared: bool = False):
            return CacheLevelConfig(
                name, CacheGeometry(size, assoc, block), shared=shared
            )

        return HierarchyConfig(
            l1i=level("L1I", self.l1i_bytes, self.l1_assoc),
            l1d=level("L1D", self.l1d_bytes, self.l1_assoc),
            l2=level("L2", self.l2_bytes, self.l2_assoc),
            l3=level("L3", self.l3_bytes_per_socket, self.l3_assoc, shared=True),
        )

    def smt_model(self) -> SmtModel:
        """The platform's calibrated SMT throughput model."""
        return _SMT_CALIBRATIONS[self.calibration]()

    def tlb_configs(self) -> tuple[TlbConfig, TlbConfig]:
        """(small-page, huge-page) TLB configurations."""
        return _TLB_CALIBRATIONS[self.calibration]()

    def table_row(self) -> dict[str, str]:
        """Table II row, rendered as strings."""
        return {
            "Microarchitecture": self.microarchitecture,
            "Number of sockets": str(self.sockets),
            "Cores": f"{self.cores_per_socket} per socket",
            "SMT": str(self.smt_ways),
            "Cache block size": f"{self.cache_block_bytes} B",
            "L1-I$ (per core)": format_size(self.l1i_bytes),
            "L1-D$ (per core)": format_size(self.l1d_bytes),
            "Private L2$ (per core)": format_size(self.l2_bytes),
            "Shared L3$ (per socket)": format_size(self.l3_bytes_per_socket),
        }


def _table2_platforms() -> tuple[PlatformSpec, PlatformSpec]:
    """Derive the Table II constants from the declarative hw catalog."""
    from repro.hw.adapters import platform_spec
    from repro.hw.catalog import plt1, plt2

    return platform_spec(plt1()), platform_spec(plt2())


PLT1, PLT2 = _table2_platforms()
