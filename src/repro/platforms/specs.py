"""The paper's two lab platforms (Table II).

PLT1 is an Intel Haswell-class 2-socket server, PLT2 an IBM POWER8-class
one.  The spec objects carry the Table II attributes plus the calibrated
per-platform models (cache hierarchy, SMT curve, TLB configurations) used
throughout the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._units import GiB, KiB, MiB, format_size
from repro.cachesim.hierarchy import HierarchyConfig
from repro.cpu.smt import SmtModel
from repro.cpu.tlb import TlbConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlatformSpec:
    """One hardware platform, as characterized in Table II."""

    name: str
    microarchitecture: str
    sockets: int
    cores_per_socket: int
    smt_ways: int
    cache_block_bytes: int
    l1i_bytes: int
    l1d_bytes: int
    l2_bytes: int
    l3_bytes_per_socket: int
    memory_bytes: int = 256 * GiB
    small_page_bytes: int = 4 * KiB
    huge_page_bytes: int = 2 * MiB
    issue_width: int = 4
    frequency_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt_ways < 1:
            raise ConfigurationError("socket/core/SMT counts must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.smt_ways

    def hierarchy(self) -> HierarchyConfig:
        """The platform's cache hierarchy as a simulator configuration."""
        if self.name == "PLT1":
            return HierarchyConfig.plt1_like(
                l3_size=self.l3_bytes_per_socket, l3_assoc=20
            )
        return HierarchyConfig.plt2_like()

    def smt_model(self) -> SmtModel:
        """The platform's calibrated SMT throughput model."""
        return (
            SmtModel.plt1_calibrated()
            if self.name == "PLT1"
            else SmtModel.plt2_calibrated()
        )

    def tlb_configs(self) -> tuple[TlbConfig, TlbConfig]:
        """(small-page, huge-page) TLB configurations."""
        if self.name == "PLT1":
            return TlbConfig.plt1_small_pages(), TlbConfig.plt1_huge_pages()
        return TlbConfig.plt2_small_pages(), TlbConfig.plt2_huge_pages()

    def table_row(self) -> dict[str, str]:
        """Table II row, rendered as strings."""
        return {
            "Microarchitecture": self.microarchitecture,
            "Number of sockets": str(self.sockets),
            "Cores": f"{self.cores_per_socket} per socket",
            "SMT": str(self.smt_ways),
            "Cache block size": f"{self.cache_block_bytes} B",
            "L1-I$ (per core)": format_size(self.l1i_bytes),
            "L1-D$ (per core)": format_size(self.l1d_bytes),
            "Private L2$ (per core)": format_size(self.l2_bytes),
            "Shared L3$ (per socket)": format_size(self.l3_bytes_per_socket),
        }


PLT1 = PlatformSpec(
    name="PLT1",
    microarchitecture="Intel Haswell",
    sockets=2,
    cores_per_socket=18,
    smt_ways=2,
    cache_block_bytes=64,
    l1i_bytes=32 * KiB,
    l1d_bytes=32 * KiB,
    l2_bytes=256 * KiB,
    l3_bytes_per_socket=45 * MiB,
    small_page_bytes=4 * KiB,
    huge_page_bytes=2 * MiB,
    issue_width=4,
    frequency_ghz=2.5,
)

PLT2 = PlatformSpec(
    name="PLT2",
    microarchitecture="IBM POWER8",
    sockets=2,
    cores_per_socket=12,
    smt_ways=8,
    cache_block_bytes=128,
    l1i_bytes=32 * KiB,
    l1d_bytes=64 * KiB,
    l2_bytes=512 * KiB,
    l3_bytes_per_socket=96 * MiB,
    small_page_bytes=64 * KiB,
    huge_page_bytes=16 * MiB,
    issue_width=8,
    frequency_ghz=3.5,
)
