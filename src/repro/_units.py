"""Size and time units used throughout the library.

The paper quotes capacities in KiB/MiB/GiB and latencies in nanoseconds.
Keeping the conversions in one tiny module avoids magic numbers like
``1 << 20`` scattered through simulator code.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Nanoseconds are the base time unit of all latency models.
NS: float = 1.0
US: float = 1e3
MS: float = 1e6


def kib(n: float) -> int:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * KiB)


def mib(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * MiB)


def gib(n: float) -> int:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * GiB)


def format_size(num_bytes: float) -> str:
    """Render a byte count using the largest binary unit that fits.

    >>> format_size(45 * MiB)
    '45 MiB'
    >>> format_size(1536)
    '1.5 KiB'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if num_bytes >= unit:
            value = num_bytes / unit
            if value == int(value):
                return f"{int(value)} {name}"
            return f"{value:.4g} {name}"
    return f"{int(num_bytes)} B"


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return log2(n) for a power of two, raising otherwise.

    Cache geometry code uses this to turn sizes into shift amounts; a
    non-power-of-two indicates a configuration error, so failing loudly
    beats silently rounding.
    """
    if not is_power_of_two(n):
        raise ValueError(f"expected a power of two, got {n}")
    return n.bit_length() - 1
