"""Top-Down slot accounting (Yasin 2014), as used in the paper's Figure 3.

The paper's Figure 3 breaks a 4-wide PLT1 leaf into: retiring 32%,
bad speculation 15.4%, front-end latency 13.8%, front-end bandwidth 8.5%,
back-end memory 20.5%, back-end core 9.7%.

The model converts per-kilo-instruction event rates into cycles per
instruction (CPI) components with per-event penalties, then into slot
fractions.  On an n-wide machine, total slots are ``cycles * n``; retired
slots are the instruction count, so the retiring fraction is
``1 / (CPI_total * n)`` — for IPC 1.27 on a 4-wide core that is 31.8%,
matching the paper's 32% retiring share exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PipelineMetrics:
    """Per-kilo-instruction event rates feeding the Top-Down model."""

    branch_mispredict_mpki: float
    #: L1-I misses that hit L2.
    l1i_mpki: float
    #: Instruction fetches that miss the L2 (hit L3 or beyond).
    l2i_mpki: float
    #: Data accesses that miss the L2 and hit L3.
    l2d_mpki: float
    #: Data accesses that miss the L3 (served by memory).
    l3d_mpki: float

    def __post_init__(self) -> None:
        for name in (
            "branch_mispredict_mpki",
            "l1i_mpki",
            "l2i_mpki",
            "l2d_mpki",
            "l3d_mpki",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class TopDownBreakdown:
    """Slot fractions of the six level-2 Top-Down categories (sum to 1)."""

    retiring: float
    bad_speculation: float
    frontend_latency: float
    frontend_bandwidth: float
    backend_memory: float
    backend_core: float

    def __post_init__(self) -> None:
        total = sum(self.as_dict().values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"fractions must sum to 1, got {total}")

    def as_dict(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_latency": self.frontend_latency,
            "frontend_bandwidth": self.frontend_bandwidth,
            "backend_memory": self.backend_memory,
            "backend_core": self.backend_core,
        }

    @property
    def memory_bound_upper_gain(self) -> float:
        """Upper-bound speedup from eliminating all memory stalls.

        The paper's §II-F: converting the ~21% of memory slots to retired
        slots would add ~64% to the retired instruction count.
        """
        return self.backend_memory / self.retiring

    def render(self) -> str:
        """One line per category, in percent."""
        return "\n".join(
            f"{name:<20} {fraction * 100:5.1f}%"
            for name, fraction in self.as_dict().items()
        )


@dataclass(frozen=True)
class TopDownModel:
    """Event-rate → slot-fraction conversion with per-event penalties.

    Penalties are *effective* cycles per event — what a miss costs after the
    machine's own latency hiding — not raw latencies.  The
    :meth:`haswell_smt2` instance is fitted so that the paper's measured S1
    event rates reproduce Figure 3's slot shares and Table I's IPC exactly;
    :meth:`haswell_single` uses a single-thread memory penalty (no co-thread
    filling stall slots), which is what lets the same model land mcf at
    IPC ~0.15 and perlbench near 2.7.

    ``mlp`` divides the memory penalty for workloads with overlapping
    misses; the paper finds search has almost none (§III-D), so 1.0.
    """

    width: int = 4
    branch_penalty: float = 13.5
    #: L1-I miss that hits the L2 (fetch bubbles mostly hidden by the
    #: decoded-uop queue and fetch-ahead).
    l1i_penalty: float = 1.5
    #: Instruction fetch that misses the L2 and hits the L3.
    l2i_penalty: float = 5.0
    #: Data access that misses the L2 and hits the L3.
    l2d_penalty: float = 20.0
    #: Data access served by main memory.
    memory_penalty: float = 110.0
    mlp: float = 1.0
    #: Dispatch inefficiencies (decode gaps, fusion limits) as slots lost
    #: per retired instruction; feeds front-end bandwidth.
    frontend_bandwidth_slots_per_instr: float = 0.268
    #: Execution serialization (divides, long dependency chains) in cycles
    #: per kilo-instruction; feeds back-end core.
    core_cycles_per_ki: float = 76.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError("width must be >= 1")
        if self.mlp < 1:
            raise ConfigurationError("mlp must be >= 1")

    # ------------------------------------------------------------------
    # Fitted instances
    # ------------------------------------------------------------------

    @classmethod
    def haswell_smt2(cls) -> "TopDownModel":
        """PLT1 with SMT-2 on (the fleet's configuration).

        The co-resident thread fills a large share of memory-stall slots,
        so the effective memory penalty is far below the raw latency.
        Fitted to Figure 3's shares at S1's event rates.
        """
        return cls(memory_penalty=45.0)

    @classmethod
    def haswell_single(cls) -> "TopDownModel":
        """PLT1 running one thread per core (SPEC-style measurement)."""
        return cls()

    @classmethod
    def power8_smt8(cls) -> "TopDownModel":
        """PLT2 with SMT-8: memory almost fully hidden, wide but
        serialization-limited core."""
        return cls(
            width=8,
            branch_penalty=8.0,
            memory_penalty=25.0,
            core_cycles_per_ki=142.0,
        )

    # ------------------------------------------------------------------

    def cpi_components(self, metrics: PipelineMetrics) -> dict[str, float]:
        """Cycles-per-instruction contribution of each stall category."""
        per_instr = 1.0 / 1000.0
        bad_spec = metrics.branch_mispredict_mpki * per_instr * self.branch_penalty
        fe_latency = per_instr * (
            metrics.l1i_mpki * self.l1i_penalty
            + metrics.l2i_mpki * self.l2i_penalty
        )
        fe_bandwidth = self.frontend_bandwidth_slots_per_instr / self.width
        be_memory = (
            per_instr
            * (
                metrics.l2d_mpki * self.l2d_penalty
                + metrics.l3d_mpki * self.memory_penalty
            )
            / self.mlp
        )
        be_core = self.core_cycles_per_ki * per_instr
        return {
            "retiring": 1.0 / self.width,
            "bad_speculation": bad_spec,
            "frontend_latency": fe_latency,
            "frontend_bandwidth": fe_bandwidth,
            "backend_memory": be_memory,
            "backend_core": be_core,
        }

    def ipc(self, metrics: PipelineMetrics) -> float:
        """Predicted instructions per cycle."""
        return 1.0 / sum(self.cpi_components(metrics).values())

    def breakdown(self, metrics: PipelineMetrics) -> TopDownBreakdown:
        """Slot fractions for the six categories."""
        components = self.cpi_components(metrics)
        total_cpi = sum(components.values())
        fractions = {k: v / total_cpi for k, v in components.items()}
        # Normalize any floating residue into retiring.
        residue = 1.0 - sum(fractions.values())
        fractions["retiring"] += residue
        return TopDownBreakdown(**fractions)
