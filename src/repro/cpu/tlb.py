"""TLB simulation for the huge-page study (Figure 2c).

The paper measures ~10% throughput from enabling large pages (2 MiB on
PLT1, 16 MiB on PLT2) — "expected for a data-intensive program that touches
nearly all physical memory".  A functional two-level TLB simulated over the
same traces as the caches reproduces the mechanism: with 4 KiB pages the
heap and shard sprawl across far more pages than the STLB covers, and every
STLB miss costs a page walk.

The TLB is modeled with the same set-associative LRU machinery as the
caches — a TLB *is* a cache of page translations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._units import KiB, MiB, is_power_of_two
from repro.cachesim import fastsim
from repro.cachesim.cache import CacheGeometry, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.memtrace.trace import Trace


@dataclass(frozen=True)
class TlbConfig:
    """A two-level TLB: small fully-associative L1, larger L2 (STLB)."""

    page_size: int = 4 * KiB
    l1_entries: int = 64
    stlb_entries: int = 1024
    #: Page-walk latency charged per STLB miss.
    walk_ns: float = 30.0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_size):
            raise ConfigurationError(
                f"page_size must be a power of two, got {self.page_size}"
            )
        if self.l1_entries <= 0 or self.stlb_entries <= 0:
            raise ConfigurationError("TLB entry counts must be positive")

    @classmethod
    def plt1_small_pages(cls) -> "TlbConfig":
        """Haswell-like 4 KiB-page TLBs."""
        return cls(page_size=4 * KiB, l1_entries=64, stlb_entries=1024)

    @classmethod
    def plt1_huge_pages(cls) -> "TlbConfig":
        """Haswell-like 2 MiB-page TLBs (fewer entries, vastly more reach)."""
        return cls(page_size=2 * MiB, l1_entries=32, stlb_entries=1024)

    @classmethod
    def plt2_small_pages(cls) -> "TlbConfig":
        """POWER8-like 64 KiB-page ERAT/TLB."""
        return cls(page_size=64 * KiB, l1_entries=48, stlb_entries=2048)

    @classmethod
    def plt2_huge_pages(cls) -> "TlbConfig":
        """POWER8-like 16 MiB-page ERAT/TLB."""
        return cls(page_size=16 * MiB, l1_entries=32, stlb_entries=2048)


@dataclass(frozen=True)
class TlbResult:
    """Outcome of one TLB simulation."""

    config: TlbConfig
    accesses: int
    l1_misses: int
    stlb_misses: int
    instruction_count: int

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def stlb_mpki(self) -> float:
        if self.instruction_count <= 0:
            raise ConfigurationError("instruction_count must be positive")
        return self.stlb_misses / (self.instruction_count / 1000.0)

    @property
    def walk_ns_per_instruction(self) -> float:
        """Average page-walk time charged to each instruction."""
        return self.stlb_mpki / 1000.0 * self.config.walk_ns


def simulate_tlb(
    trace: Trace, config: TlbConfig, engine: str = "reference"
) -> TlbResult:
    """Simulate the two-level TLB over every access of a trace.

    Per-thread TLBs would be more faithful for many-thread traces; the
    paper's 16-thread leaf shares code/heap/shard across threads, so a
    single shared TLB gives the same page-level reuse picture and is what
    this function models.

    Both TLB levels are fully-associative LRU caches of page numbers, so a
    hit is exactly "stack distance <= entries" and ``engine="fast"`` (or
    ``"auto"``) can replay each level through the vectorized single-set
    kernel :func:`repro.cachesim.fastsim.fast_lru_hits` — the STLB sees
    precisely the L1-miss subsequence.  Miss counts are bit-identical to
    the reference per-access loop.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot simulate TLB over an empty trace")
    shift = config.page_size.bit_length() - 1
    if fastsim.resolve_engine(engine) == "fast":
        pages64 = (trace.addr >> np.uint64(shift)).astype(np.int64)
        l1_hits = fastsim.fast_lru_hits(pages64, 1, config.l1_entries)
        missed = pages64[~l1_hits]
        l1_misses = len(missed)
        if l1_misses:
            stlb_hits = fastsim.fast_lru_hits(missed, 1, config.stlb_entries)
            stlb_misses = l1_misses - int(np.count_nonzero(stlb_hits))
        else:
            stlb_misses = 0
        return TlbResult(
            config=config,
            accesses=len(trace),
            l1_misses=l1_misses,
            stlb_misses=stlb_misses,
            instruction_count=trace.instruction_count,
        )
    l1 = SetAssociativeCache(
        CacheGeometry.fully_associative(
            config.l1_entries * config.page_size, config.page_size
        )
    )
    stlb = SetAssociativeCache(
        CacheGeometry.fully_associative(
            config.stlb_entries * config.page_size, config.page_size
        )
    )
    pages = (trace.addr >> shift).astype(object)

    l1_misses = 0
    stlb_misses = 0
    for page in pages.tolist():
        hit, __ = l1.access(page)
        if hit:
            continue
        l1_misses += 1
        hit, __ = stlb.access(page)
        if not hit:
            stlb_misses += 1
    return TlbResult(
        config=config,
        accesses=len(trace),
        l1_misses=l1_misses,
        stlb_misses=stlb_misses,
        instruction_count=trace.instruction_count,
    )


def huge_page_speedup(
    small: TlbResult, huge: TlbResult, baseline_ns_per_instruction: float
) -> float:
    """Throughput ratio huge/small given a baseline time-per-instruction.

    Page-walk time is added serially to each configuration's
    time-per-instruction — consistent with the paper's finding that search
    has little memory-level parallelism to hide latency behind (§III-D).
    """
    if baseline_ns_per_instruction <= 0:
        raise ConfigurationError("baseline_ns_per_instruction must be positive")
    time_small = baseline_ns_per_instruction + small.walk_ns_per_instruction
    time_huge = baseline_ns_per_instruction + huge.walk_ns_per_instruction
    return time_small / time_huge
