"""Core-count throughput scaling (Figure 2a).

The paper measures near-perfect QPS scaling from 8 to 72 cores with SMT off:
search has ample request-level parallelism, negligible read/write sharing,
and does not saturate shared-cache or memory bandwidth (§II-E).  The model
is therefore linear with a small, configurable efficiency loss per core for
the residual effects (slightly reduced L3 capacity per core, memory-channel
queuing), defaulting to the near-1.0 scaling factor the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreScalingModel:
    """Normalized throughput as a function of active core count.

    ``qps(n) = n * efficiency(n)`` with
    ``efficiency(n) = 1 - loss_per_core * (n - reference_cores)`` for
    ``n > reference_cores`` and 1.0 at or below the reference.
    """

    reference_cores: int = 8
    loss_per_core: float = 0.0008

    def __post_init__(self) -> None:
        if self.reference_cores < 1:
            raise ConfigurationError("reference_cores must be >= 1")
        if not 0 <= self.loss_per_core < 0.05:
            raise ConfigurationError(
                "loss_per_core must be small and non-negative, got "
                f"{self.loss_per_core}"
            )

    def efficiency(self, cores: int) -> float:
        """Per-core efficiency relative to the reference configuration."""
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        extra = max(0, cores - self.reference_cores)
        return max(0.5, 1.0 - self.loss_per_core * extra)

    def normalized_qps(self, cores: int) -> float:
        """Throughput normalized so ``reference_cores`` maps to 1.0."""
        return (cores * self.efficiency(cores)) / self.reference_cores

    def curve(self, core_counts: list[int]) -> dict[int, float]:
        """Normalized QPS for each requested core count."""
        return {n: self.normalized_qps(n) for n in core_counts}

    def scaling_exponent(self, low: int, high: int) -> float:
        """Empirical scaling exponent between two core counts.

        1.0 is perfect linear scaling; the paper's Figure 2a is ~0.99.
        """
        import math

        if low < 1 or high <= low:
            raise ConfigurationError("need 1 <= low < high")
        ratio = self.normalized_qps(high) / self.normalized_qps(low)
        return math.log(ratio) / math.log(high / low)
