"""Simultaneous-multithreading throughput model (Figure 2b).

The paper measures SMT-2 at +37% on PLT1 (Haswell) and SMT-2/8 at
+76%/+224% on PLT2 (POWER8), with diminishing returns "due to increased
contention for shared resources" (§II-E).

The model is the classical slot-interleaving view: a single thread keeps the
core's issue slots busy for a fraction ``u`` of the time — for search this
is the Top-Down retiring share (~32% on PLT1, Figure 3) — and with T
independent threads the expected occupancy is ``1 - (1 - u)**T``, so the
ideal speedup over one thread is ``(1 - (1-u)**T) / u``.  Shared-resource
contention (L1/L2 thrashing, port conflicts) is modeled as an exponential
discount with linear and quadratic terms in the extra thread count,
calibrated against the paper's measured points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SmtModel:
    """Core throughput vs. hardware-thread count.

    ``speedup(T) = [(1-(1-u)^T)/u] * exp(-(a*(T-1) + b*(T-1)^2))``

    Parameters
    ----------
    single_thread_utilization:
        ``u`` — fraction of issue capacity one thread sustains alone.
    contention_linear, contention_quadratic:
        ``a`` and ``b`` — contention discount coefficients.
    """

    single_thread_utilization: float
    contention_linear: float = 0.0
    contention_quadratic: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.single_thread_utilization <= 1:
            raise ConfigurationError(
                "single_thread_utilization must be in (0, 1], got "
                f"{self.single_thread_utilization}"
            )
        if self.contention_quadratic < 0:
            raise ConfigurationError("contention_quadratic must be >= 0")

    def occupancy(self, threads: int) -> float:
        """Expected issue-slot occupancy with ``threads`` threads."""
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        u = self.single_thread_utilization
        return 1.0 - (1.0 - u) ** threads

    def speedup(self, threads: int) -> float:
        """Core throughput relative to one thread."""
        ideal = self.occupancy(threads) / self.occupancy(1)
        extra = threads - 1
        discount = math.exp(
            -(self.contention_linear * extra + self.contention_quadratic * extra**2)
        )
        return ideal * discount

    def improvement(self, threads: int) -> float:
        """Fractional improvement over one thread (0.37 = +37%)."""
        return self.speedup(threads) - 1.0

    def curve(self, max_threads: int) -> dict[int, float]:
        """Speedups for 1..max_threads."""
        return {t: self.speedup(t) for t in range(1, max_threads + 1)}

    # ------------------------------------------------------------------
    # Calibrated instances (anchored to Figures 2b and 3)
    # ------------------------------------------------------------------

    @classmethod
    def plt1_calibrated(cls) -> "SmtModel":
        """PLT1: u = 32% retiring share (Figure 3); fit to +37% at SMT-2."""
        u = 0.32
        ideal_2 = (1.0 - (1.0 - u) ** 2) / u
        a = math.log(ideal_2 / 1.37)
        return cls(single_thread_utilization=u, contention_linear=a)

    @classmethod
    def plt2_calibrated(cls) -> "SmtModel":
        """PLT2: u from POWER8 per-core IPC; fit to +76% SMT-2, 3.24x SMT-8."""
        u = 0.235
        ideal = lambda t: (1.0 - (1.0 - u) ** t) / u  # noqa: E731
        # Solve a + b = g2 and 7a + 49b = g8 for the two measured anchors.
        g2 = math.log(ideal(2) / 1.76)
        g8 = math.log(ideal(8) / 3.24)
        b = (g8 - 7.0 * g2) / 42.0
        a = g2 - b
        return cls(
            single_thread_utilization=u,
            contention_linear=a,
            contention_quadratic=max(0.0, b),
        )
