"""Processor-core models.

Everything outside the cache hierarchy that the paper measures: branch
prediction (Table I branch MPKI, Figure 3 bad-speculation slots), TLB
behaviour under small vs. huge pages (Figure 2c), SMT throughput
(Figure 2b), core-count scaling (Figure 2a), and the Top-Down slot
accounting (Figure 3).
"""

from repro.cpu.branch import (
    BimodalPredictor,
    BranchStream,
    BranchWorkloadConfig,
    GSharePredictor,
    LocalHistoryPredictor,
    TournamentPredictor,
    generate_branch_stream,
    measure_branch_mpki,
    simulate_predictor,
)
from repro.cpu.tlb import TlbConfig, TlbResult, simulate_tlb
from repro.cpu.smt import SmtModel
from repro.cpu.scaling import CoreScalingModel
from repro.cpu.topdown import TopDownBreakdown, TopDownModel, PipelineMetrics

__all__ = [
    "BimodalPredictor",
    "BranchStream",
    "BranchWorkloadConfig",
    "GSharePredictor",
    "LocalHistoryPredictor",
    "TournamentPredictor",
    "generate_branch_stream",
    "measure_branch_mpki",
    "simulate_predictor",
    "TlbConfig",
    "TlbResult",
    "simulate_tlb",
    "SmtModel",
    "CoreScalingModel",
    "TopDownBreakdown",
    "TopDownModel",
    "PipelineMetrics",
]
