"""Branch-stream generation and branch-predictor simulation.

Table I shows branch MPKI is one of the sharpest contrasts between
production search (6–9.5 MPKI) and other workloads (SPEC mcf 11.3, CloudSuite
web search 0.5): search executes "numerous data-dependent branches" (§II-C).

The generator models a static branch population with Zipfian execution
frequency and three behaviour classes:

* **biased** — almost-always-taken/not-taken checks; trivially predictable.
* **loop** — taken for a (geometric) trip count, then one exit mispredict.
* **data-dependent** — outcomes driven by (simulated) scored data, i.e.
  effectively random coin flips with a per-branch bias; these produce the
  irreducible mispredicts that dominate search.

Predictors are standard: bimodal (2-bit counters), gshare, and a
bimodal/gshare tournament with a chooser table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memtrace.sampling import ZipfSampler


@dataclass(frozen=True)
class BranchWorkloadConfig:
    """Composition of a workload's conditional-branch population."""

    static_branches: int = 4096
    zipf: float = 0.9
    #: Fraction of *static* branches in each behaviour class.
    biased_fraction: float = 0.55
    loop_fraction: float = 0.25
    data_dependent_fraction: float = 0.20
    #: Taken probability of a biased branch (or 1 - this, half the time).
    biased_rate: float = 0.03
    #: Mean loop trip count.
    loop_trip_mean: float = 12.0
    #: Coin-flip bias of data-dependent branches (0.5 = maximally random).
    data_dependent_bias: float = 0.5
    branches_per_ki: float = 150.0

    def __post_init__(self) -> None:
        total = (
            self.biased_fraction
            + self.loop_fraction
            + self.data_dependent_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"behaviour-class fractions must sum to 1, got {total}"
            )
        if self.static_branches <= 0:
            raise ConfigurationError("static_branches must be positive")
        if not 0 < self.data_dependent_bias <= 0.5:
            raise ConfigurationError(
                "data_dependent_bias must be in (0, 0.5]"
            )


@dataclass(frozen=True)
class BranchStream:
    """A dynamic branch stream: PCs, outcomes, and the instruction budget."""

    pcs: np.ndarray
    outcomes: np.ndarray
    instruction_count: int

    def __post_init__(self) -> None:
        if len(self.pcs) != len(self.outcomes):
            raise ConfigurationError("pcs and outcomes must align")

    def __len__(self) -> int:
        return len(self.pcs)


# Behaviour-class tags used internally by the generator.
_BIASED, _LOOP, _DATA = 0, 1, 2


def generate_branch_stream(
    config: BranchWorkloadConfig,
    instructions: int,
    seed: int = 0,
) -> BranchStream:
    """Generate a dynamic branch stream representing ``instructions``."""
    if instructions <= 0:
        raise ConfigurationError("instructions must be positive")
    rng = np.random.default_rng(seed)
    n_branches = max(1, round(instructions / 1000 * config.branches_per_ki))
    n_static = config.static_branches

    # Stratified class assignment over popularity ranks: a golden-ratio
    # stripe gives every class its proportional share of hot *and* cold
    # ranks.  (A random shuffle occasionally drops a rare class onto the
    # hottest rank, swinging the dynamic mix — and MPKI — wildly by seed.)
    stripe = ((np.arange(n_static) + 1) * 0.6180339887498949) % 1.0
    classes = np.full(n_static, _BIASED, np.int8)
    classes[stripe < config.data_dependent_fraction + config.loop_fraction] = _LOOP
    classes[stripe < config.data_dependent_fraction] = _DATA

    # Per-branch taken bias.  Loops handled separately below.
    bias = np.empty(n_static, np.float64)
    biased_mask = classes == _BIASED
    flips = rng.random(n_static) < 0.5
    bias[biased_mask] = np.where(
        flips[biased_mask], config.biased_rate, 1.0 - config.biased_rate
    )
    data_mask = classes == _DATA
    flips2 = rng.random(n_static) < 0.5
    dd = config.data_dependent_bias
    bias[data_mask] = np.where(flips2[data_mask], dd, 1.0 - dd)
    loop_mask = classes == _LOOP
    trip = config.loop_trip_mean
    # A loop branch is taken trip/(trip+1) of the time on average.
    bias[loop_mask] = trip / (trip + 1.0)

    sampler = ZipfSampler(n_static, config.zipf, rng)
    pcs = sampler.sample(n_branches)
    u = rng.random(n_branches)
    outcomes = u < bias[pcs]

    # Give loop branches their periodic structure: trip-1 takens followed
    # by one not-taken exit.  Each static loop has a *fixed* trip count —
    # that is what makes short loops learnable by history predictors while
    # longer loops still mispredict roughly once per trip.
    is_loop_occ = classes[pcs] == _LOOP
    if is_loop_occ.any():
        per_branch_trips = np.maximum(
            2, rng.geometric(1.0 / trip, size=n_static)
        )
        loop_idx = np.flatnonzero(is_loop_occ)
        loop_pcs = pcs[loop_idx]
        order = np.argsort(loop_pcs, kind="stable")
        sorted_pcs = loop_pcs[order]
        # Occurrence index of each dynamic instance within its static branch.
        new_group = np.empty(len(sorted_pcs), bool)
        new_group[0] = True
        new_group[1:] = sorted_pcs[1:] != sorted_pcs[:-1]
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(len(sorted_pcs)), 0)
        )
        occ = np.arange(len(sorted_pcs)) - group_start
        trips = per_branch_trips[sorted_pcs]
        taken_sorted = (occ % trips) != (trips - 1)
        taken = np.empty(len(loop_idx), bool)
        taken[order] = taken_sorted
        outcomes[loop_idx] = taken

    return BranchStream(
        pcs=pcs.astype(np.int64),
        outcomes=outcomes,
        instruction_count=instructions,
    )


# ----------------------------------------------------------------------
# Predictors
# ----------------------------------------------------------------------


class _SaturatingCounterTable:
    """A table of 2-bit saturating counters (0..3; >= 2 predicts taken)."""

    def __init__(self, entries: int, initial: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(
                f"table entries must be a power of two, got {entries}"
            )
        if not 0 <= initial <= 3:
            raise ConfigurationError(f"initial counter must be 0..3, got {initial}")
        self.mask = entries - 1
        self.counters = [initial] * entries

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        c = self.counters[i]
        if taken:
            if c < 3:
                self.counters[i] = c + 1
        elif c > 0:
            self.counters[i] = c - 1


class BimodalPredictor:
    """Per-PC 2-bit counter predictor."""

    def __init__(self, entries: int = 4096) -> None:
        self._table = _SaturatingCounterTable(entries)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        prediction = self._table.predict(pc)
        self._table.update(pc, taken)
        return prediction


class GSharePredictor:
    """Global-history XOR PC predictor (McFarling)."""

    def __init__(self, entries: int = 16384, history_bits: int = 12) -> None:
        if history_bits <= 0:
            raise ConfigurationError("history_bits must be positive")
        self._table = _SaturatingCounterTable(entries)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = pc ^ self._history
        prediction = self._table.predict(index)
        self._table.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return prediction


class LocalHistoryPredictor:
    """Two-level per-branch-history predictor (PAg, Yeh & Patt).

    A per-PC history register indexes a shared pattern table of 2-bit
    counters.  This is what learns loop periodicity and per-branch
    patterns that global history cannot see through interleaving noise.
    """

    def __init__(
        self,
        history_bits: int = 16,
        history_entries: int = 16384,
        pattern_entries: int = 1 << 18,
    ) -> None:
        if history_bits <= 0:
            raise ConfigurationError("history_bits must be positive")
        if history_entries <= 0 or history_entries & (history_entries - 1):
            raise ConfigurationError(
                f"history_entries must be a power of two, got {history_entries}"
            )
        self._histories = [0] * history_entries
        self._history_mask = (1 << history_bits) - 1
        self._pc_mask = history_entries - 1
        self._patterns = _SaturatingCounterTable(pattern_entries)
        # Mix the PC into the pattern index so two branches with the same
        # local history do not necessarily collide.
        self._pc_hash_shift = history_bits

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        slot = pc & self._pc_mask
        history = self._histories[slot]
        # Fibonacci-hash the PC before mixing so different branches with
        # identical local histories spread across the pattern table.
        index = history ^ ((pc * 0x9E3779B1) >> 8)
        prediction = self._patterns.predict(index)
        self._patterns.update(index, taken)
        self._histories[slot] = ((history << 1) | int(taken)) & self._history_mask
        return prediction


class TournamentPredictor:
    """Bimodal/local-history hybrid with a per-PC chooser (21264 style).

    The bimodal side is near-optimal for the heavily-biased checks that
    dominate search code; the local-history side learns loop periodicity.
    A per-PC chooser routes each branch to whichever side predicts it
    better.  (A gshare side would add cross-branch correlation, which the
    synthetic streams deliberately do not contain — data-dependent search
    branches are the paper's irreducible mispredicts.)
    """

    def __init__(
        self,
        entries: int = 16384,
        history_bits: int = 16,
        chooser_entries: int = 4096,
    ) -> None:
        self._bimodal = BimodalPredictor(entries)
        self._local = LocalHistoryPredictor(history_bits=history_bits)
        # Start weakly on the bimodal side: local-history entries are cold
        # until a branch's pattern has actually repeated.
        self._chooser = _SaturatingCounterTable(chooser_entries, initial=1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        p_bimodal = self._bimodal.predict_and_update(pc, taken)
        p_local = self._local.predict_and_update(pc, taken)
        use_local = self._chooser.predict(pc)
        prediction = p_local if use_local else p_bimodal
        if p_bimodal != p_local:
            self._chooser.update(pc, p_local == taken)
        return prediction


def simulate_predictor(predictor, stream: BranchStream) -> int:
    """Run a predictor over a stream; return the mispredict count."""
    mispredicts = 0
    predict = predictor.predict_and_update
    for pc, taken in zip(stream.pcs.tolist(), stream.outcomes.tolist()):
        if predict(pc, taken) != taken:
            mispredicts += 1
    return mispredicts


def branch_mpki(mispredicts: int, instruction_count: int) -> float:
    """Branch mispredicts per kilo-instruction."""
    if instruction_count <= 0:
        raise ConfigurationError("instruction_count must be positive")
    return mispredicts / (instruction_count / 1000.0)


def measure_branch_mpki(
    predictor, stream: BranchStream, warmup_fraction: float = 0.25
) -> float:
    """Steady-state branch MPKI: train first, measure the remainder.

    The paper's fleet measurements observe long-running servers; counting
    the predictor's cold-start mispredicts would systematically overstate
    MPKI for every workload, so the first ``warmup_fraction`` of the stream
    only trains.
    """
    if not 0 <= warmup_fraction < 1:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    split = int(len(stream) * warmup_fraction)
    mispredicts = 0
    predict = predictor.predict_and_update
    for i, (pc, taken) in enumerate(
        zip(stream.pcs.tolist(), stream.outcomes.tolist())
    ):
        if predict(pc, taken) != taken and i >= split:
            mispredicts += 1
    measured_instructions = stream.instruction_count * (1.0 - warmup_fraction)
    return branch_mpki(mispredicts, round(measured_instructions))
