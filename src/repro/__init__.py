"""repro — a reproduction of "Memory Hierarchy for Web Search" (HPCA 2018).

The library has four layers:

* **substrates** — :mod:`repro.memtrace` (traces and synthetic workload
  generators), :mod:`repro.cachesim` (exact and analytic cache simulation),
  :mod:`repro.cpu` (branch/TLB/SMT/Top-Down models), and
  :mod:`repro.search` (a functional mini web-search serving system that
  emits labelled memory traces);
* **calibration** — :mod:`repro.workloads` (search services and baseline
  profiles) and :mod:`repro.platforms` (PLT1/PLT2 specs);
* **the paper's contribution** — :mod:`repro.core`: the Eq. 1 performance
  model, area accounting, the cache-for-cores rebalancer, the eDRAM L4
  design, the combined optimizer, and power/energy accounting;
* **experiments** — :mod:`repro.experiments`: one driver per table/figure.

Quickstart::

    from repro.experiments import composed_run, RunPreset
    from repro.memtrace.trace import Segment

    run = composed_run("s1-leaf", RunPreset.quick())
    print(run.mpki("L2", Segment.CODE))   # the paper's L2-instr MPKI story
"""

from repro._units import GiB, KiB, MiB
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)

__version__ = "1.0.0"

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "SimulationError",
    "CalibrationError",
    "__version__",
]
