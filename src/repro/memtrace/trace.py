"""Numpy-backed memory traces.

A :class:`Trace` is the interchange format between workload generators (the
synthetic models and the search engine) and the simulators.  Each access
carries a byte address, an access kind (instruction fetch, load, store), the
software segment it belongs to (code / heap / shard / stack — the paper's
§III classification), and the issuing hardware thread.

Traces also carry ``instruction_count``: generators may represent several
retired instructions with a single memory access (e.g. one fetch event per
basic-block cache line), so misses-per-kilo-instruction must be normalized by
this count rather than by ``len(trace)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator, Sequence

import numpy as np

from repro._units import is_power_of_two
from repro.errors import TraceError


class AccessKind(IntEnum):
    """What kind of memory operation an access is."""

    INSTR = 0
    LOAD = 1
    STORE = 2


class Segment(IntEnum):
    """Software segment classification used throughout the paper's §III."""

    CODE = 0
    HEAP = 1
    SHARD = 2
    STACK = 3


#: Data segments, i.e. everything a load/store can touch.
DATA_SEGMENTS = (Segment.HEAP, Segment.SHARD, Segment.STACK)


@dataclass(frozen=True)
class Trace:
    """An immutable memory-access trace.

    Parameters
    ----------
    addr:
        Byte addresses, ``uint64``.
    kind:
        :class:`AccessKind` values, ``uint8``.
    segment:
        :class:`Segment` values, ``uint8``.
    thread:
        Hardware-thread ids, ``uint16``.
    instruction_count:
        Number of retired instructions this trace represents.  Must be at
        least the number of ``INSTR`` accesses.
    """

    addr: np.ndarray
    kind: np.ndarray
    segment: np.ndarray
    thread: np.ndarray
    instruction_count: int = field(default=0)

    def __post_init__(self) -> None:
        n = len(self.addr)
        for name in ("kind", "segment", "thread"):
            if len(getattr(self, name)) != n:
                raise TraceError(
                    f"field {name!r} has length {len(getattr(self, name))}, "
                    f"expected {n}"
                )
        object.__setattr__(self, "addr", np.ascontiguousarray(self.addr, np.uint64))
        object.__setattr__(self, "kind", np.ascontiguousarray(self.kind, np.uint8))
        object.__setattr__(
            self, "segment", np.ascontiguousarray(self.segment, np.uint8)
        )
        object.__setattr__(
            self, "thread", np.ascontiguousarray(self.thread, np.uint16)
        )
        if self.instruction_count == 0 and n:
            object.__setattr__(
                self,
                "instruction_count",
                int(np.count_nonzero(self.kind == AccessKind.INSTR)),
            )
        if self.instruction_count < 0:
            raise TraceError("instruction_count must be non-negative")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Trace":
        """Return a zero-length trace."""
        return cls(
            addr=np.empty(0, np.uint64),
            kind=np.empty(0, np.uint8),
            segment=np.empty(0, np.uint8),
            thread=np.empty(0, np.uint16),
            instruction_count=0,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[tuple[int, AccessKind, Segment, int]],
        instruction_count: int = 0,
    ) -> "Trace":
        """Build a trace from ``(addr, kind, segment, thread)`` tuples.

        Convenient for tests and small hand-written traces; generators should
        build the numpy arrays directly.
        """
        if not records:
            return cls.empty()
        addr, kind, segment, thread = zip(*records)
        return cls(
            addr=np.asarray(addr, np.uint64),
            kind=np.asarray(kind, np.uint8),
            segment=np.asarray(segment, np.uint8),
            thread=np.asarray(thread, np.uint16),
            instruction_count=instruction_count,
        )

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"]) -> "Trace":
        """Concatenate traces back to back, summing instruction counts."""
        traces = [t for t in traces if len(t)]
        if not traces:
            return cls.empty()
        return cls(
            addr=np.concatenate([t.addr for t in traces]),
            kind=np.concatenate([t.kind for t in traces]),
            segment=np.concatenate([t.segment for t in traces]),
            thread=np.concatenate([t.thread for t in traces]),
            instruction_count=sum(t.instruction_count for t in traces),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.addr)

    def __iter__(self) -> Iterator[tuple[int, AccessKind, Segment, int]]:
        for i in range(len(self)):
            yield (
                int(self.addr[i]),
                AccessKind(int(self.kind[i])),
                Segment(int(self.segment[i])),
                int(self.thread[i]),
            )

    @property
    def kilo_instructions(self) -> float:
        """Instruction count in thousands (the KI of MPKI)."""
        return self.instruction_count / 1000.0

    def lines(self, block_size: int = 64) -> np.ndarray:
        """Return cache-line addresses (``addr // block_size``) as uint64."""
        if not is_power_of_two(block_size):
            raise TraceError(f"block_size must be a power of two, got {block_size}")
        shift = block_size.bit_length() - 1
        return self.addr >> np.uint64(shift)

    def thread_ids(self) -> list[int]:
        """Sorted list of distinct thread ids appearing in the trace."""
        return sorted(int(t) for t in np.unique(self.thread))

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def select(self, mask: np.ndarray, instruction_count: int | None = None) -> "Trace":
        """Return the sub-trace where ``mask`` is True.

        ``instruction_count`` defaults to this trace's count scaled by the
        retained fraction of accesses, which keeps MPKI comparable when a
        filter removes accesses uniformly (e.g. selecting one thread out of a
        homogeneous interleave).  Pass an explicit value when the filter is
        not uniform (e.g. selecting only loads).
        """
        if mask.shape != self.addr.shape:
            raise TraceError("mask shape does not match trace length")
        if instruction_count is None:
            kept = int(np.count_nonzero(mask))
            total = len(self)
            instruction_count = (
                round(self.instruction_count * kept / total) if total else 0
            )
        return Trace(
            addr=self.addr[mask],
            kind=self.kind[mask],
            segment=self.segment[mask],
            thread=self.thread[mask],
            instruction_count=instruction_count,
        )

    def only_kind(self, *kinds: AccessKind) -> "Trace":
        """Sub-trace containing only the given access kinds.

        The instruction count is preserved: MPKI for e.g. the load-only
        sub-trace is still per kilo-instruction of the original execution.
        """
        mask = np.isin(self.kind, [int(k) for k in kinds])
        return self.select(mask, instruction_count=self.instruction_count)

    def only_segment(self, *segments: Segment) -> "Trace":
        """Sub-trace touching only the given segments (keeps instr count)."""
        mask = np.isin(self.segment, [int(s) for s in segments])
        return self.select(mask, instruction_count=self.instruction_count)

    def only_thread(self, thread_id: int) -> "Trace":
        """Sub-trace issued by one hardware thread.

        The instruction count is divided proportionally, assuming threads
        retire instructions in proportion to the accesses they issue.
        """
        mask = self.thread == np.uint16(thread_id)
        return self.select(mask)

    def instructions(self) -> "Trace":
        """Instruction-fetch accesses only."""
        return self.only_kind(AccessKind.INSTR)

    def data(self) -> "Trace":
        """Load and store accesses only."""
        return self.only_kind(AccessKind.LOAD, AccessKind.STORE)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def segment_counts(self) -> dict[Segment, int]:
        """Number of accesses per segment."""
        counts = np.bincount(self.segment, minlength=len(Segment))
        return {seg: int(counts[seg]) for seg in Segment}

    def kind_counts(self) -> dict[AccessKind, int]:
        """Number of accesses per access kind."""
        counts = np.bincount(self.kind, minlength=len(AccessKind))
        return {kind: int(counts[kind]) for kind in AccessKind}

    def describe(self) -> str:
        """One-line human-readable summary, for logs and examples."""
        segs = ", ".join(
            f"{seg.name.lower()}={count}"
            for seg, count in self.segment_counts().items()
            if count
        )
        return (
            f"Trace({len(self)} accesses, {self.instruction_count} instructions, "
            f"{len(self.thread_ids())} threads; {segs})"
        )
