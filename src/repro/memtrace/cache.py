"""Content-addressed artifact cache for generated traces and streams.

Synthetic trace generation is the dominant fixed cost of an experiment
campaign: every run regenerates the same calibrated streams from the same
``(config, seed)`` pairs.  The paper sidesteps the analogous cost by
collecting Pin traces once and reusing the collection across analyses
(§III-A); this module is that reuse for our synthetic stand-ins.

An :class:`ArtifactCache` stores numpy array bundles under a directory,
addressed purely by content identity: the key is a SHA-256 over a
canonical JSON encoding of everything that determines the generated
bytes — the artifact kind, the full :class:`~repro.memtrace.synthetic.
WorkloadConfig`, the generator seed, the request shape (event counts,
block size, threads), and the bundle :data:`~repro.memtrace.io.
FORMAT_VERSION`.  Two processes that would generate identical arrays
therefore compute identical keys, and any change to the workload
parameters or the on-disk layout changes the key (automatic
invalidation, never staleness).

Hits, misses, and traffic are recorded as ``repro.cache.*`` counters in
the cache's :class:`~repro.obs.metrics.MetricsRegistry`; in a parallel
run each worker's counters are snapshotted and merged by the runner
(see :mod:`repro.experiments.parallel`).

The module-level *active cache* is how the experiment layer opts in
without threading a cache handle through every experiment signature:
``repro-experiments --cache-dir DIR`` activates one per process (workers
included), and the cache-aware generators in
:mod:`repro.memtrace.synthetic` consult it by default.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import TraceError
from repro.memtrace.io import FORMAT_VERSION, load_arrays, save_arrays
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # import cycle: synthetic's generators consult this module
    from repro.memtrace.synthetic import WorkloadConfig


def artifact_key(kind: str, **identity) -> str:
    """SHA-256 key of one artifact's full generative identity.

    ``identity`` must be JSON-serializable; the encoding is canonical
    (sorted keys, no whitespace), so key equality is independent of
    argument order, process, and platform.  :data:`FORMAT_VERSION` is
    always part of the key: bumping the bundle layout invalidates every
    prior entry rather than misreading it.
    """
    payload = {"artifact": kind, "format_version": FORMAT_VERSION, **identity}
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise TraceError(f"cache key fields must be JSON-serializable: {exc}") from exc
    return hashlib.sha256(canonical.encode()).hexdigest()


def workload_identity(config: "WorkloadConfig") -> dict:
    """The cache-key fields of a :class:`WorkloadConfig` (a plain dict)."""
    return asdict(config)


class ArtifactCache:
    """A directory of content-addressed ``.npz`` array bundles.

    Concurrent writers are safe: bundles are written to a per-process
    temporary name and atomically renamed into place, and identical keys
    imply identical bytes, so the last rename winning is harmless.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Open (creating if needed) the cache rooted at ``cache_dir``."""
        self.cache_dir = Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise TraceError(f"cannot create cache dir {self.cache_dir}: {exc}") from exc
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "repro.cache.hits",
            help="Artifact-cache lookups served from disk.",
            unit="lookups",
        )
        self._misses = self.metrics.counter(
            "repro.cache.misses",
            help="Artifact-cache lookups that required regeneration.",
            unit="lookups",
        )
        self._bytes_read = self.metrics.counter(
            "repro.cache.bytes_read",
            help="Compressed bytes read from the artifact cache.",
            unit="bytes",
        )
        self._bytes_written = self.metrics.counter(
            "repro.cache.bytes_written",
            help="Compressed bytes written into the artifact cache.",
            unit="bytes",
        )

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The bundle path a key resolves to (whether or not it exists)."""
        return self.cache_dir / f"{key}.npz"

    def load(self, key: str, kind: str) -> dict[str, np.ndarray] | None:
        """Return the cached arrays for ``key``, or None on a miss.

        A corrupt or wrong-version bundle counts as a miss and is left
        for the subsequent :meth:`store` to overwrite.
        """
        path = self.path_for(key)
        if not path.exists():
            self._misses.labels(artifact=kind).inc()
            return None
        try:
            arrays, _metadata = load_arrays(path)
        except (TraceError, OSError, ValueError):
            self._misses.labels(artifact=kind).inc()
            return None
        self._hits.labels(artifact=kind).inc()
        self._bytes_read.labels(artifact=kind).inc(path.stat().st_size)
        return arrays

    def store(
        self,
        key: str,
        kind: str,
        arrays: Mapping[str, np.ndarray],
        **metadata,
    ) -> Path:
        """Persist ``arrays`` under ``key`` (atomic; returns final path)."""
        path = self.path_for(key)
        tmp = save_arrays(
            dict(arrays),
            path.with_name(f"{key}.tmp-{os.getpid()}.npz"),
            artifact=kind,
            **metadata,
        )
        try:
            os.replace(tmp, path)
        except OSError as exc:
            raise TraceError(f"cannot publish cache entry {path}: {exc}") from exc
        self._bytes_written.labels(artifact=kind).inc(path.stat().st_size)
        return path

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.npz"))

    def stats(self) -> dict[str, int]:
        """Current hit/miss/traffic totals (for footers and tests)."""
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "bytes_read": self._bytes_read.value,
            "bytes_written": self._bytes_written.value,
        }


# ----------------------------------------------------------------------
# Active cache (per-process opt-in used by the experiment layer)
# ----------------------------------------------------------------------

_ACTIVE_CACHE: ArtifactCache | None = None


def activate(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install ``cache`` as this process's active cache (None clears it).

    Returns the previously active cache so callers can restore it.
    """
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def active_cache() -> ArtifactCache | None:
    """The cache installed by :func:`activate`, or None."""
    return _ACTIVE_CACHE
