"""Multi-thread trace interleaving.

The paper's traces are 16 per-thread Pin streams; shared-cache simulation
needs one global order.  Timing-free round-robin chunk interleaving is the
standard choice for functional simulation: it preserves each thread's program
order and gives every thread proportionate occupancy of the shared levels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TraceError
from repro.memtrace.trace import Trace


def interleave_round_robin(traces: Sequence[Trace], chunk: int = 64) -> Trace:
    """Merge per-thread traces into one global trace, round-robin by chunk.

    Parameters
    ----------
    traces:
        One trace per thread, each in program order.
    chunk:
        Number of consecutive accesses a thread contributes per turn.
        Small values approximate SMT-style fine interleaving; large values
        approximate coarse time-slicing.
    """
    if not traces:
        raise TraceError("need at least one trace to interleave")
    if chunk <= 0:
        raise TraceError(f"chunk must be positive, got {chunk}")
    if len(traces) == 1:
        return traces[0]

    # Global position of access i of thread t: accesses are taken in rounds;
    # access i belongs to round i // chunk.  Sorting by (round, thread,
    # within-chunk index) yields the interleaved order.  We compute the sort
    # keys per thread and argsort once — fully vectorized.
    rounds = [np.arange(len(t), dtype=np.int64) // chunk for t in traces]
    thread_tag = [np.full(len(t), i, np.int64) for i, t in enumerate(traces)]
    within = [np.arange(len(t), dtype=np.int64) % chunk for t in traces]

    all_rounds = np.concatenate(rounds)
    all_tags = np.concatenate(thread_tag)
    all_within = np.concatenate(within)
    # Lexicographic sort: last key is primary.
    order = np.lexsort((all_within, all_tags, all_rounds))

    merged = Trace.concatenate(list(traces))
    return Trace(
        addr=merged.addr[order],
        kind=merged.kind[order],
        segment=merged.segment[order],
        thread=merged.thread[order],
        instruction_count=merged.instruction_count,
    )
