"""Footprint, working-set, and reuse statistics over traces.

These are the measurements behind Figures 4 and 5 of the paper (allocated
footprint and accessed working set as core/thread count scales) and the raw
input to the analytic miss-curve engine (reuse times).
"""

from __future__ import annotations

import numpy as np

from repro._units import KiB
from repro.errors import TraceError
from repro.memtrace.trace import Segment, Trace
from repro.obs.metrics import MetricsRegistry


def unique_lines(trace: Trace, block_size: int = 64) -> int:
    """Number of distinct cache lines touched by the trace."""
    if len(trace) == 0:
        return 0
    return int(len(np.unique(trace.lines(block_size))))


def working_set_bytes(trace: Trace, block_size: int = 64) -> int:
    """Accessed working set in bytes (distinct lines × line size).

    This is the paper's Figure 5 metric: anything touched at least once.
    """
    return unique_lines(trace, block_size) * block_size


def segment_working_sets(trace: Trace, block_size: int = 64) -> dict[Segment, int]:
    """Working-set bytes per software segment."""
    return {
        seg: working_set_bytes(trace.only_segment(seg), block_size)
        for seg in Segment
    }


def footprint_bytes(trace: Trace, page_size: int = 4 * KiB) -> int:
    """Touched memory at page granularity — a proxy for allocated footprint.

    The paper's Figure 4 reports allocator-level footprint; at trace level
    the closest observable quantity is the set of touched pages.
    """
    return unique_lines(trace, page_size) * page_size


def reuse_times(line_addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-access reuse time (accesses since previous touch of same line).

    Returns
    -------
    (reuse, is_cold):
        ``reuse[i]`` is ``i - previous_position(line[i])`` for re-references
        and 0 for cold (first-touch) accesses; ``is_cold[i]`` marks the
        first-touch accesses.

    Fully vectorized: stable-sort by line groups each line's accesses
    together in position order, so adjacent entries within a group are
    consecutive touches of the same line.
    """
    n = len(line_addrs)
    if n == 0:
        return np.empty(0, np.int64), np.empty(0, bool)
    order = np.argsort(line_addrs, kind="stable")
    sorted_lines = line_addrs[order]
    positions = order.astype(np.int64)

    same_as_prev = np.empty(n, bool)
    same_as_prev[0] = False
    same_as_prev[1:] = sorted_lines[1:] == sorted_lines[:-1]

    reuse_sorted = np.zeros(n, np.int64)
    reuse_sorted[1:] = positions[1:] - positions[:-1]
    reuse_sorted[~same_as_prev] = 0

    reuse = np.empty(n, np.int64)
    reuse[order] = reuse_sorted
    is_cold = np.empty(n, bool)
    is_cold[order] = ~same_as_prev
    return reuse, is_cold


def cold_fraction(trace: Trace, block_size: int = 64) -> float:
    """Fraction of accesses that are first touches of their line."""
    if len(trace) == 0:
        raise TraceError("cold_fraction of an empty trace is undefined")
    __, is_cold = reuse_times(trace.lines(block_size))
    return float(np.count_nonzero(is_cold)) / len(trace)


def record_trace_metrics(
    trace: Trace,
    registry: MetricsRegistry,
    block_size: int = 64,
    page_size: int = 4 * KiB,
) -> None:
    """Publish a trace's footprint statistics as ``repro.mem.*`` gauges.

    Sets ``repro.mem.working_set_bytes`` (with per-segment labeled
    children), ``repro.mem.footprint_bytes``, and
    ``repro.mem.trace_accesses`` from the trace's current contents;
    repeated calls overwrite — gauges describe the latest trace, they do
    not accumulate.

    Units: ``block_size`` and ``page_size`` are bytes (cache-line and
    page granularity respectively); published gauge values are bytes.
    """
    working_set = registry.gauge(
        "repro.mem.working_set_bytes",
        help="Accessed working set of the latest leaf trace (Figure 5 metric).",
        unit="bytes",
    )
    working_set.set(working_set_bytes(trace, block_size))
    for segment, size in segment_working_sets(trace, block_size).items():
        working_set.labels(segment=segment.name.lower()).set(size)
    registry.gauge(
        "repro.mem.footprint_bytes",
        help="Touched pages of the latest leaf trace (Figure 4 proxy).",
        unit="bytes",
    ).set(footprint_bytes(trace, page_size))
    registry.gauge(
        "repro.mem.trace_accesses",
        help="Accesses in the latest assembled leaf trace.",
        unit="accesses",
    ).set(len(trace))


def working_set_scaling(
    traces_by_threads: dict[int, Trace],
    segment: Segment,
    block_size: int = 64,
) -> dict[int, int]:
    """Working-set bytes of one segment as the thread count scales.

    ``traces_by_threads`` maps thread count -> interleaved trace; this is the
    data series of the paper's Figure 5.
    """
    return {
        n: working_set_bytes(trace.only_segment(segment), block_size)
        for n, trace in sorted(traces_by_threads.items())
    }
