"""Simulated virtual-address-space layout for a search server.

The paper classifies every access as code, heap, shard, or stack (§III-B).
To attribute simulated misses back to software structures the same way, both
the synthetic generators and the search-engine substrate place their data in
disjoint regions of a single simulated address space and label each access
with the region that owns it.

The layout mirrors a conventional Linux process image: code low, heap above
it, the memory-mapped index shard in the middle of the range, and per-thread
stacks at the top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import GiB, KiB, MiB, format_size
from repro.errors import ConfigurationError
from repro.memtrace.trace import Segment


@dataclass(frozen=True)
class SegmentRegion:
    """A contiguous address range owned by one segment."""

    segment: Segment
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ConfigurationError(
                f"invalid region for {self.segment.name}: "
                f"base={self.base}, size={self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """Return True when ``addr`` falls inside this region."""
        return self.base <= addr < self.end

    def overlaps(self, other: "SegmentRegion") -> bool:
        """Return True when the two regions share any byte."""
        return self.base < other.end and other.base < self.end

    def __str__(self) -> str:
        return (
            f"{self.segment.name.lower()}: "
            f"[{self.base:#x}, {self.end:#x}) ({format_size(self.size)})"
        )


class AddressSpace:
    """Disjoint code / heap / shard / stack regions for one server process.

    Parameters are region *capacities*; generators allocate inside them.
    Stacks are carved per thread out of the stack region.
    """

    #: Gap left between regions so off-by-one bugs in generators fault the
    #: segment lookup instead of silently mislabelling accesses.
    _GUARD = 16 * MiB

    def __init__(
        self,
        code_size: int = 64 * MiB,
        heap_size: int = 8 * GiB,
        shard_size: int = 256 * GiB,
        stack_size_per_thread: int = 8 * MiB,
        max_threads: int = 64,
    ) -> None:
        if max_threads <= 0:
            raise ConfigurationError(f"max_threads must be positive: {max_threads}")
        base = 4 * KiB  # leave page zero unmapped, as a real process would
        self.code = SegmentRegion(Segment.CODE, base, code_size)
        base = self.code.end + self._GUARD
        self.heap = SegmentRegion(Segment.HEAP, base, heap_size)
        base = self.heap.end + self._GUARD
        self.shard = SegmentRegion(Segment.SHARD, base, shard_size)
        base = self.shard.end + self._GUARD
        self.stack = SegmentRegion(
            Segment.STACK, base, stack_size_per_thread * max_threads
        )
        self.stack_size_per_thread = stack_size_per_thread
        self.max_threads = max_threads

    # ------------------------------------------------------------------

    def region(self, segment: Segment) -> SegmentRegion:
        """Return the region owning ``segment``."""
        return {
            Segment.CODE: self.code,
            Segment.HEAP: self.heap,
            Segment.SHARD: self.shard,
            Segment.STACK: self.stack,
        }[segment]

    def thread_stack(self, thread_id: int) -> SegmentRegion:
        """Return the stack sub-region reserved for one thread.

        Stacks grow down in real processes; for trace purposes only the
        range matters, so the sub-region is returned base-up.
        """
        if not 0 <= thread_id < self.max_threads:
            raise ConfigurationError(
                f"thread_id {thread_id} out of range [0, {self.max_threads})"
            )
        base = self.stack.base + thread_id * self.stack_size_per_thread
        return SegmentRegion(Segment.STACK, base, self.stack_size_per_thread)

    def classify(self, addr: int) -> Segment:
        """Map an address back to its owning segment.

        Raises :class:`ConfigurationError` for addresses in guard gaps,
        which indicates a generator bug.
        """
        for region in (self.code, self.heap, self.shard, self.stack):
            if region.contains(addr):
                return region.segment
        raise ConfigurationError(f"address {addr:#x} is not in any segment")

    def regions(self) -> tuple[SegmentRegion, ...]:
        """All four regions in address order."""
        return (self.code, self.heap, self.shard, self.stack)

    def describe(self) -> str:
        """Multi-line layout summary."""
        return "\n".join(str(r) for r in self.regions())
