"""Calibrated synthetic memory-trace generators.

The paper drives its cache studies with Pin traces of Google's production
search leaf (135 billion instructions, 16 threads) — traces we cannot have.
This module generates statistically equivalent access streams per software
segment, with locality knobs calibrated so the simulated miss behaviour
reproduces the paper's findings (§III):

* **code** — a few-MiB instruction footprint walked through a Zipfian
  function mix: hot functions live in L1-I/L2, the full footprint only fits
  in the L3 (high L2-instruction MPKI, negligible L3-instruction MPKI).
* **heap** — Zipfian reuse over a ~1 GiB shared object pool: significant
  reuse, but with a working set an order of magnitude larger than on-chip
  caches (the key insight behind the L4 proposal).
* **shard** — streaming scans over an effectively unbounded index with weak,
  heavy-tailed term reuse: mostly cold misses, ~50% hit rate only at
  multi-GiB capacities.
* **stack** — a small per-thread window that caches nearly perfectly.

Sizes scale with ``WorkloadConfig.scale`` so GiB-scale experiments run on a
laptop; capacities in experiments are scaled identically, preserving the
shape of every miss-ratio curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro._units import GiB, KiB, MiB
from repro.errors import ConfigurationError
from repro.memtrace.address_space import AddressSpace
from repro.memtrace.sampling import (
    ZipfSampler,
    bounded_geometric,
    scatter_permutation,
    sequential_runs,
)
from repro.memtrace.trace import AccessKind, Segment, Trace

if TYPE_CHECKING:  # runtime import stays inside the generators (cycle)
    from repro.memtrace.cache import ArtifactCache

_LINE_BYTES = 64  # generator-internal line granularity (bytes)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic search-like workload.

    Sizes are *paper-scale*; ``scale`` divides the big data segments (heap
    pool and shard) at generation time.  Event mixes are per kilo-instruction.
    """

    # -- scaling ------------------------------------------------------
    #: Divides the big data segments (heap pool, shard).
    scale: float = 1.0
    #: Divides the small segments (code footprint and its function size,
    #: stack window).  Set equal to ``scale`` for uniformly scaled runs
    #: where cache capacities are scaled too; leave at 1.0 when only the
    #: GiB-scale segments need shrinking.
    micro_scale: float = 1.0

    # -- code segment ---------------------------------------------------
    code_footprint: int = 4 * MiB
    code_function_bytes: int = 8 * KiB
    code_zipf: float = 1.05
    code_run_lines: float = 24.0
    instructions_per_fetch: float = 10.0

    # -- heap segment -----------------------------------------------------
    heap_pool_bytes: int = 1 * GiB
    heap_object_bytes: int = 128
    heap_zipf: float = 0.80

    # -- shard segment ----------------------------------------------------
    shard_bytes: int = 128 * GiB
    shard_terms: int = 1 << 17
    shard_list_zipf: float = 0.70
    shard_term_zipf: float = 0.85
    shard_run_lines: float = 12.0
    #: Scans start at the head of the posting list with this probability
    #: (document-at-a-time readers restart lists; skip-list jumps land at
    #: random offsets otherwise).  Prefix sharing between scans of the same
    #: term is what gives the shard its weak GiB-scale reuse (Figure 6b).
    shard_prefix_prob: float = 0.75
    #: Pareto tail index of scan lengths: many short scans, occasional
    #: full-list sweeps.  Values near 1 spread prefix reuse across decades
    #: of cache capacity.
    shard_run_alpha: float = 1.10

    # -- stack segment ----------------------------------------------------
    stack_window_bytes: int = 16 * KiB
    stack_frame_bytes: int = 192

    # -- instruction mix ----------------------------------------------
    loads_per_ki: float = 250.0
    stores_per_ki: float = 100.0
    #: Fraction of *data* events going to each data segment.
    heap_fraction: float = 0.45
    shard_fraction: float = 0.25
    stack_fraction: float = 0.30

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        if not 0 < self.micro_scale <= 1:
            raise ConfigurationError(
                f"micro_scale must be in (0, 1], got {self.micro_scale}"
            )
        fractions = self.heap_fraction + self.shard_fraction + self.stack_fraction
        if abs(fractions - 1.0) > 1e-9:
            raise ConfigurationError(
                f"data-segment fractions must sum to 1, got {fractions}"
            )
        if self.instructions_per_fetch < 1:
            raise ConfigurationError("instructions_per_fetch must be >= 1")
        for name in ("code_footprint", "heap_pool_bytes", "shard_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    # ------------------------------------------------------------------

    def scaled(self, scale: float, micro_scale: float | None = None) -> "WorkloadConfig":
        """Return a copy with different scale factors.

        ``micro_scale`` defaults to ``scale`` — the uniformly scaled run.
        """
        return replace(
            self,
            scale=scale,
            micro_scale=scale if micro_scale is None else micro_scale,
        )

    @property
    def scaled_function_bytes(self) -> int:
        """Function size after micro-scaling (at least two lines)."""
        return max(2 * 64, int(self.code_function_bytes * self.micro_scale))

    @property
    def scaled_code_bytes(self) -> int:
        """Code footprint after micro-scaling (at least one function)."""
        return max(
            self.scaled_function_bytes,
            int(self.code_footprint * self.micro_scale),
        )

    @property
    def scaled_frame_bytes(self) -> int:
        """Stack frame after micro-scaling (at least one word)."""
        return max(8, int(self.stack_frame_bytes * self.micro_scale))

    @property
    def scaled_stack_bytes(self) -> int:
        """Stack window after micro-scaling (at least two frames)."""
        return max(
            2 * self.scaled_frame_bytes,
            int(self.stack_window_bytes * self.micro_scale),
        )

    @property
    def scaled_heap_bytes(self) -> int:
        """Heap pool size after scaling (at least one object)."""
        return max(self.heap_object_bytes, int(self.heap_pool_bytes * self.scale))

    @property
    def scaled_shard_bytes(self) -> int:
        """Shard size after scaling (at least one line per term)."""
        return max(self.shard_terms * _LINE_BYTES, int(self.shard_bytes * self.scale))

    @property
    def data_events_per_ki(self) -> float:
        """Total load + store events per kilo-instruction."""
        return self.loads_per_ki + self.stores_per_ki

    @property
    def fetch_events_per_ki(self) -> float:
        """Instruction-fetch events per kilo-instruction."""
        return 1000.0 / self.instructions_per_fetch


class CodeModel:
    """Instruction-fetch address stream over a Zipfian function mix."""

    def __init__(self, config: WorkloadConfig, base: int, rng: np.random.Generator):
        self._base_line = base // _LINE_BYTES
        func_lines = max(2, config.scaled_function_bytes // _LINE_BYTES)
        total_lines = max(func_lines, config.scaled_code_bytes // _LINE_BYTES)
        self._func_lines = func_lines
        self._num_funcs = max(1, total_lines // func_lines)
        self._rng = rng
        self._sampler = ZipfSampler(self._num_funcs, config.code_zipf, rng)
        # Scatter function popularity across the footprint so hot code is not
        # physically contiguous (matches real binaries post-linking).
        self._func_base = scatter_permutation(self._num_funcs, rng) * func_lines
        self._run_lines = config.code_run_lines

    @property
    def footprint_bytes(self) -> int:
        """Bytes of code that can ever be fetched."""
        return self._num_funcs * self._func_lines * _LINE_BYTES

    def generate(self, n_events: int) -> np.ndarray:
        """Return ``n_events`` byte addresses of instruction fetches."""
        if n_events <= 0:
            return np.empty(0, np.int64)
        chunks: list[np.ndarray] = []
        produced = 0
        while produced < n_events:
            need = n_events - produced
            est_runs = max(16, int(need / self._run_lines * 1.3))
            funcs = self._sampler.sample(est_runs)
            lengths = bounded_geometric(
                self._run_lines, self._func_lines, est_runs, self._rng
            )
            starts = self._base_line + self._func_base[funcs]
            lines = sequential_runs(starts, lengths)
            chunks.append(lines)
            produced += len(lines)
        lines = np.concatenate(chunks)[:n_events]
        return lines * _LINE_BYTES


class HeapModel:
    """Zipfian-reuse accesses over a shared pool of heap objects."""

    def __init__(self, config: WorkloadConfig, base: int, rng: np.random.Generator):
        self._base = base
        self._object_bytes = config.heap_object_bytes
        pool_bytes = config.scaled_heap_bytes
        self._num_objects = max(1, pool_bytes // self._object_bytes)
        self._rng = rng
        self._sampler = ZipfSampler(self._num_objects, config.heap_zipf, rng)
        # Popularity rank -> scattered object slot, so hot objects do not
        # cluster in the address space (limits spatial-locality wins,
        # matching Figure 7b).
        self._slot_of_rank = scatter_permutation(self._num_objects, rng)

    @property
    def pool_bytes(self) -> int:
        """Total bytes of heap objects that can be accessed."""
        return self._num_objects * self._object_bytes

    def generate(self, n_events: int) -> np.ndarray:
        """Return ``n_events`` byte addresses of heap accesses."""
        if n_events <= 0:
            return np.empty(0, np.int64)
        ranks = self._sampler.sample(n_events)
        slots = self._slot_of_rank[ranks]
        offsets = (
            self._rng.integers(0, max(1, self._object_bytes // 8), n_events) * 8
        )
        return self._base + slots * self._object_bytes + offsets


class ShardModel:
    """Posting-list scans with weak, heavy-tailed term reuse.

    The shard is laid out as one posting list per term; list lengths follow a
    Zipf over terms (frequent terms have long lists) and query terms are
    drawn from a separate Zipf.  A scan reads a random sequential window of
    the chosen list — queries use skip lists, so full-list scans are rare.
    """

    def __init__(self, config: WorkloadConfig, base: int, rng: np.random.Generator):
        self._base_line = base // _LINE_BYTES
        self._rng = rng
        total_lines = config.scaled_shard_bytes // _LINE_BYTES
        n_terms = min(config.shard_terms, total_lines)
        weights = np.arange(1, n_terms + 1, dtype=np.float64) ** -config.shard_list_zipf
        lines = np.maximum(1, (weights / weights.sum() * total_lines)).astype(np.int64)
        self._list_lines = lines
        self._list_start = np.concatenate(([0], np.cumsum(lines)[:-1]))
        self._term_sampler = ZipfSampler(n_terms, config.shard_term_zipf, rng)
        self._run_lines = config.shard_run_lines
        self._prefix_prob = config.shard_prefix_prob
        self._run_alpha = config.shard_run_alpha

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of posting lists."""
        return int(self._list_lines.sum()) * _LINE_BYTES

    def generate(self, n_events: int) -> np.ndarray:
        """Return ``n_events`` byte addresses of shard (read-only) accesses."""
        if n_events <= 0:
            return np.empty(0, np.int64)
        chunks: list[np.ndarray] = []
        produced = 0
        while produced < n_events:
            need = n_events - produced
            est_runs = max(16, int(need / self._run_lines * 1.3))
            terms = self._term_sampler.sample(est_runs)
            list_lines = self._list_lines[terms]
            # Pareto-tailed scan lengths: minimum 1 line, heavy upper tail,
            # capped by the list being scanned.
            pareto = 1.0 + self._rng.pareto(self._run_alpha, est_runs)
            lengths = np.minimum(
                np.maximum(1, (pareto * self._run_lines / 2.0).astype(np.int64)),
                list_lines,
            )
            # Most scans restart at the list head (shared prefixes); the
            # rest land at skip-list offsets.
            max_start = list_lines - lengths
            random_starts = (
                self._rng.random(est_runs) * (max_start + 1)
            ).astype(np.int64)
            from_head = self._rng.random(est_runs) < self._prefix_prob
            starts = self._list_start[terms] + np.where(
                from_head, 0, random_starts
            )
            chunks.append(sequential_runs(starts, lengths))
            produced += len(chunks[-1])
        lines = np.concatenate(chunks)[:n_events]
        return (self._base_line + lines) * _LINE_BYTES


class StackModel:
    """Per-thread stack accesses following a call-depth random walk."""

    def __init__(self, config: WorkloadConfig, base: int, rng: np.random.Generator):
        self._base = base
        self._window = config.scaled_stack_bytes
        self._frame = config.scaled_frame_bytes
        self._rng = rng

    def generate(self, n_events: int) -> np.ndarray:
        """Return ``n_events`` byte addresses of stack accesses."""
        if n_events <= 0:
            return np.empty(0, np.int64)
        steps = self._rng.choice((-self._frame, self._frame), size=n_events)
        walk = np.cumsum(steps)
        # Reflect the unbounded walk into [0, window) with a triangle wave so
        # depth stays bounded without clipping artifacts at the edges.
        period = 2 * self._window
        depth = self._window - np.abs((walk % period) - self._window)
        depth = np.minimum(depth, self._window - self._frame)
        offsets = self._rng.integers(0, max(1, self._frame // 8), n_events) * 8
        return self._base + depth + offsets


# ----------------------------------------------------------------------
# Cache-aware generation entry points
# ----------------------------------------------------------------------
#
# These module-level functions are the preferred way for experiment code
# to obtain streams and traces: given the same ``(config, seed, request)``
# they return byte-identical arrays whether generated fresh or loaded
# from the active :class:`~repro.memtrace.cache.ArtifactCache`, so warm
# reruns skip generation entirely without perturbing results.


def generate_segment_streams(
    config: WorkloadConfig,
    events: dict[Segment, int],
    seed: int,
    block_size: int = 64,
    thread_id: int = 0,
    cache: "ArtifactCache | None" = None,
) -> dict[Segment, np.ndarray]:
    """Per-segment line streams for ``config``, via the artifact cache.

    Equivalent to ``SyntheticWorkload(config, seed=seed).segment_streams(
    events, thread_id, block_size)`` — a freshly constructed workload, so
    the RNG stream (and therefore the output) is a pure function of the
    arguments.  When a cache is supplied (or active), a prior identical
    request is loaded from disk instead of regenerated.
    """
    from repro.memtrace import cache as cache_mod

    cache = cache if cache is not None else cache_mod.active_cache()
    key = None
    if cache is not None:
        key = cache_mod.artifact_key(
            "segment-streams",
            config=cache_mod.workload_identity(config),
            seed=seed,
            events=[[segment.name, int(count)] for segment, count in events.items()],
            block_size=block_size,
            thread_id=thread_id,
        )
        arrays = cache.load(key, "streams")
        if arrays is not None:
            return {
                segment: arrays[segment.name]
                for segment in events
                if segment.name in arrays
            }
    workload = SyntheticWorkload(config, seed=seed)
    streams = workload.segment_streams(events, thread_id, block_size)
    if cache is not None:
        cache.store(
            key,
            "streams",
            {segment.name: stream for segment, stream in streams.items()},
            seed=seed,
        )
    return streams


def generate_trace(
    config: WorkloadConfig,
    instructions_per_thread: int,
    seed: int,
    threads: int = 1,
    cache: "ArtifactCache | None" = None,
) -> Trace:
    """An interleaved multi-thread trace for ``config``, via the cache.

    Equivalent to ``SyntheticWorkload(config, seed=seed).generate(
    instructions_per_thread, threads)`` with the same cache semantics as
    :func:`generate_segment_streams`.
    """
    from repro.memtrace import cache as cache_mod

    cache = cache if cache is not None else cache_mod.active_cache()
    key = None
    if cache is not None:
        key = cache_mod.artifact_key(
            "trace",
            config=cache_mod.workload_identity(config),
            seed=seed,
            instructions_per_thread=instructions_per_thread,
            threads=threads,
        )
        arrays = cache.load(key, "trace")
        if arrays is not None and {
            "addr",
            "kind",
            "segment",
            "thread",
            "instruction_count",
        } <= set(arrays):
            return Trace(
                addr=arrays["addr"],
                kind=arrays["kind"],
                segment=arrays["segment"],
                thread=arrays["thread"],
                instruction_count=int(arrays["instruction_count"]),
            )
    trace = SyntheticWorkload(config, seed=seed).generate(
        instructions_per_thread, threads
    )
    if cache is not None:
        cache.store(
            key,
            "trace",
            {
                "addr": trace.addr,
                "kind": trace.kind,
                "segment": trace.segment,
                "thread": trace.thread,
                "instruction_count": np.int64(trace.instruction_count),
            },
            seed=seed,
        )
    return trace


class SyntheticWorkload:
    """A complete multi-threaded synthetic search-like workload.

    Code, heap, and shard state is shared across threads (the paper's leaf
    threads share one binary, one heap, and one mapped shard); stacks are
    private.
    """

    def __init__(
        self,
        config: WorkloadConfig | None = None,
        address_space: AddressSpace | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or WorkloadConfig()
        cfg = self.config
        self.address_space = address_space or AddressSpace(
            code_size=max(cfg.scaled_code_bytes, 1 * MiB),
            heap_size=max(cfg.scaled_heap_bytes, 1 * MiB),
            shard_size=max(cfg.scaled_shard_bytes, 1 * MiB),
        )
        self._rng = np.random.default_rng(seed)
        space = self.address_space
        self.code = CodeModel(cfg, space.code.base, self._rng)
        self.heap = HeapModel(cfg, space.heap.base, self._rng)
        self.shard = ShardModel(cfg, space.shard.base, self._rng)

    # ------------------------------------------------------------------

    def generate_thread(self, instructions: int, thread_id: int = 0) -> Trace:
        """Generate one thread's trace representing ``instructions`` retires."""
        if instructions <= 0:
            raise ConfigurationError(f"instructions must be positive: {instructions}")
        cfg = self.config
        ki = instructions / 1000.0
        n_fetch = max(1, round(ki * cfg.fetch_events_per_ki))
        n_load = round(ki * cfg.loads_per_ki)
        n_store = round(ki * cfg.stores_per_ki)
        n_data = n_load + n_store

        n_heap = round(n_data * cfg.heap_fraction)
        n_shard = round(n_data * cfg.shard_fraction)
        n_stack = n_data - n_heap - n_shard

        code_addr = self.code.generate(n_fetch)
        heap_addr = self.heap.generate(n_heap)
        shard_addr = self.shard.generate(n_shard)
        stack_region = self.address_space.thread_stack(thread_id)
        stack = StackModel(cfg, stack_region.base, self._rng)
        stack_addr = stack.generate(n_stack)

        addr, segment, kind = self._interleave_segments(
            code_addr, heap_addr, shard_addr, stack_addr, n_store
        )
        thread = np.full(len(addr), thread_id, np.uint16)
        return Trace(
            addr=addr.astype(np.uint64),
            kind=kind,
            segment=segment,
            thread=thread,
            instruction_count=instructions,
        )

    def generate(self, instructions_per_thread: int, threads: int = 1) -> Trace:
        """Generate an interleaved multi-thread trace.

        Threads are interleaved in fixed-size chunks, approximating the
        fine-grained interleave of SMT/multicore execution without modelling
        timing (the paper's simulator is functional too, §III-A).
        """
        from repro.memtrace.interleave import interleave_round_robin

        if threads <= 0:
            raise ConfigurationError(f"threads must be positive: {threads}")
        per_thread = [
            self.generate_thread(instructions_per_thread, thread_id=t)
            for t in range(threads)
        ]
        if threads == 1:
            return per_thread[0]
        return interleave_round_robin(per_thread, chunk=64)

    def segment_streams(
        self,
        events: dict[Segment, int],
        thread_id: int = 0,
        block_size: int = 64,
    ) -> dict[Segment, np.ndarray]:
        """Generate independent per-segment line streams.

        This is the input format of the composed-hierarchy engine
        (:mod:`repro.cachesim.composed`): each segment's stream is sized for
        its *own* working-set coverage instead of sharing one instruction
        budget, and rates are applied at composition time.
        """
        shift = np.uint64(block_size.bit_length() - 1)
        streams: dict[Segment, np.ndarray] = {}
        for segment, count in events.items():
            if count <= 0:
                raise ConfigurationError(
                    f"event count for {segment.name} must be positive"
                )
            if segment == Segment.CODE:
                addrs = self.code.generate(count)
            elif segment == Segment.HEAP:
                addrs = self.heap.generate(count)
            elif segment == Segment.SHARD:
                addrs = self.shard.generate(count)
            else:
                region = self.address_space.thread_stack(thread_id)
                addrs = StackModel(self.config, region.base, self._rng).generate(count)
            streams[segment] = (addrs.astype(np.uint64) >> shift).astype(np.int64)
        return streams

    # ------------------------------------------------------------------

    def _interleave_segments(
        self,
        code_addr: np.ndarray,
        heap_addr: np.ndarray,
        shard_addr: np.ndarray,
        stack_addr: np.ndarray,
        n_store: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge per-segment streams into one program-order stream.

        Each stream keeps its internal order (sequential runs survive); the
        cross-stream order is a random but proportionate shuffle.
        """
        streams = {
            Segment.CODE: code_addr,
            Segment.HEAP: heap_addr,
            Segment.SHARD: shard_addr,
            Segment.STACK: stack_addr,
        }
        total = sum(len(s) for s in streams.values())
        segment = np.empty(total, np.uint8)
        addr = np.empty(total, np.int64)

        # Draw the segment sequence, then fill each segment's slots in-order.
        tags = np.concatenate(
            [np.full(len(s), seg, np.uint8) for seg, s in streams.items()]
        )
        self._rng.shuffle(tags)
        segment[:] = tags
        for seg, stream in streams.items():
            addr[segment == seg] = stream

        kind = np.full(total, AccessKind.LOAD, np.uint8)
        kind[segment == Segment.CODE] = AccessKind.INSTR
        # Stores go to writable segments only: the shard is a read-only
        # memory-mapped index.  Flip a proportionate, random subset of heap
        # and stack accesses to stores.
        writable = (segment == Segment.HEAP) | (segment == Segment.STACK)
        writable_idx = np.flatnonzero(writable)
        n_store = min(n_store, len(writable_idx))
        if n_store > 0:
            chosen = self._rng.choice(writable_idx, size=n_store, replace=False)
            kind[chosen] = AccessKind.STORE
        return addr, segment, kind
