"""Random-sampling primitives shared by the workload generators.

Search traffic is Zipfian at every level — query terms, heap-object
popularity, function invocation counts — so a fast bounded-Zipf sampler is
the workhorse here.  numpy's ``random.zipf`` is unbounded and only supports
exponents > 1; the generators need bounded supports and exponents on both
sides of 1, so we sample by inverse-CDF over explicit rank probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to ``(k+1)**-a``.

    Parameters
    ----------
    n:
        Support size (number of ranks).
    exponent:
        Zipf exponent ``a >= 0``.  ``a = 0`` degenerates to uniform;
        values below 1 give the heavy, slowly-concentrating tails typical
        of index-shard reuse, values above 1 concentrate mass on few ranks.
    rng:
        numpy Generator used for sampling.
    """

    def __init__(self, n: int, exponent: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ConfigurationError(f"support size must be positive, got {n}")
        if exponent < 0:
            raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        weights = np.arange(1, n + 1, dtype=np.float64) ** -exponent
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks (int64)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank`` (mostly for tests)."""
        if not 0 <= rank < self.n:
            raise ConfigurationError(f"rank {rank} out of range [0, {self.n})")
        prev = self._cdf[rank - 1] if rank else 0.0
        return float(self._cdf[rank] - prev)


def bounded_geometric(
    mean: float, cap: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` lengths >= 1 with geometric tails, capped at ``cap``.

    Used for sequential-run lengths (posting-list scans, straight-line code
    runs).  The cap keeps a single draw from overflowing a region.
    """
    if mean < 1:
        raise ConfigurationError(f"mean must be >= 1, got {mean}")
    if cap < 1:
        raise ConfigurationError(f"cap must be >= 1, got {cap}")
    p = min(1.0, 1.0 / mean)
    draws = rng.geometric(p, size=count)
    return np.minimum(draws, cap).astype(np.int64)


def sequential_runs(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand run starts and lengths into one concatenated address stream.

    ``starts[i]`` begins a run of ``lengths[i]`` consecutive values:
    ``starts[i], starts[i]+1, ..., starts[i]+lengths[i]-1``.

    Fully vectorized: output size is ``lengths.sum()``.
    """
    if starts.shape != lengths.shape:
        raise ConfigurationError("starts and lengths must have the same shape")
    if len(starts) == 0:
        return np.empty(0, np.int64)
    lengths = lengths.astype(np.int64)
    if (lengths < 1).any():
        raise ConfigurationError("all run lengths must be >= 1")
    total = int(lengths.sum())
    # Classic repeat-and-offset expansion: for each output slot, subtract the
    # starting slot of its run to recover the within-run offset.
    run_first_slot = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(run_first_slot, lengths)
    return np.repeat(starts.astype(np.int64), lengths) + within


def scatter_permutation(n: int, rng: np.random.Generator) -> np.ndarray:
    """A fixed random permutation of ``0..n-1``.

    The heap generator uses this to scatter hot objects across the address
    range, so popularity does not correlate with address — matching the
    paper's observation that larger cache blocks buy little for heap data
    (Figure 7b).
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    return rng.permutation(n)
