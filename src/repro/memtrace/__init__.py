"""Memory-trace infrastructure.

This package provides the trace representation shared by every simulator in
the library, the simulated address-space layout for search servers, the
calibrated synthetic trace generators that stand in for the paper's
proprietary Pin traces, and working-set / footprint statistics.
"""

from repro.memtrace.trace import AccessKind, Segment, Trace
from repro.memtrace.address_space import AddressSpace, SegmentRegion
from repro.memtrace.synthetic import (
    CodeModel,
    HeapModel,
    ShardModel,
    StackModel,
    SyntheticWorkload,
    WorkloadConfig,
    generate_segment_streams,
    generate_trace,
)
from repro.memtrace.cache import ArtifactCache, artifact_key
from repro.memtrace.interleave import interleave_round_robin
from repro.memtrace.io import load_arrays, load_trace, save_arrays, save_trace
from repro.memtrace.stats import (
    footprint_bytes,
    reuse_times,
    unique_lines,
    working_set_bytes,
)

__all__ = [
    "AccessKind",
    "Segment",
    "Trace",
    "AddressSpace",
    "SegmentRegion",
    "CodeModel",
    "HeapModel",
    "ShardModel",
    "StackModel",
    "SyntheticWorkload",
    "WorkloadConfig",
    "generate_segment_streams",
    "generate_trace",
    "ArtifactCache",
    "artifact_key",
    "interleave_round_robin",
    "save_trace",
    "load_trace",
    "save_arrays",
    "load_arrays",
    "footprint_bytes",
    "reuse_times",
    "unique_lines",
    "working_set_bytes",
]
