"""Trace persistence.

Generating the bigger synthetic traces and search-engine traces takes real
time; persisting them as compressed ``.npz`` bundles lets experiment
campaigns and notebooks reuse collections, the way the paper reuses its Pin
trace collections across analyses ("results are qualitatively similar over
multiple such collections", §III-A).

Two layers live here:

* :func:`save_trace` / :func:`load_trace` — the :class:`Trace` bundle
  format used by notebooks and the CLI tools.
* :func:`save_arrays` / :func:`load_arrays` — the generic versioned
  array-bundle format underneath it, which
  :mod:`repro.memtrace.cache` uses to persist arbitrary artifacts
  (per-segment line streams, traces) content-addressed by key.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.memtrace.trace import Trace

#: Format version written into every bundle; bump on layout changes.
FORMAT_VERSION = 1


def _normalize_path(path: str | Path) -> Path:
    """Append ``.npz`` unless the path already carries it (any case)."""
    path = Path(path)
    if path.suffix.lower() != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_arrays(arrays: dict[str, np.ndarray], path: str | Path, **metadata) -> Path:
    """Write named arrays (plus JSON-able metadata) as a versioned bundle.

    The suffix ``.npz`` is appended when missing (case-insensitively, so
    ``leaf.NPZ`` is left alone).  Returns the final path.  A missing
    parent directory or other filesystem failure raises
    :class:`TraceError`, not a raw ``OSError``.
    """
    path = _normalize_path(path)
    if "header" in arrays:
        raise TraceError("array name 'header' is reserved for the bundle header")
    try:
        header = json.dumps(
            {"version": FORMAT_VERSION, "metadata": metadata}, sort_keys=True
        )
    except TypeError as exc:
        raise TraceError(f"metadata must be JSON-serializable: {exc}") from exc
    try:
        # Write through an explicit handle: ``np.savez_compressed`` appends
        # its own (case-sensitive) ``.npz`` to bare paths, which would turn
        # ``t.NPZ`` into ``t.NPZ.npz`` behind our back.
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                header=np.frombuffer(header.encode(), np.uint8),
                **arrays,
            )
    except OSError as exc:
        raise TraceError(f"cannot write bundle {path}: {exc}") from exc
    return path


def load_arrays(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a bundle written by :func:`save_arrays`.

    Returns ``(arrays, metadata)``; the version in the header must match
    :data:`FORMAT_VERSION`.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace bundle at {path}")
    with np.load(path) as bundle:
        try:
            header = json.loads(bytes(bundle["header"]).decode())
        except KeyError as exc:
            raise TraceError(f"{path} is not a trace bundle: missing {exc}") from exc
        arrays = {name: bundle[name] for name in bundle.files if name != "header"}
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"{path} has format version {header.get('version')}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    return arrays, header.get("metadata", {})


def save_trace(trace: Trace, path: str | Path, **metadata) -> Path:
    """Write a trace (plus optional JSON-able metadata) to ``path``.

    The suffix ``.npz`` is appended when missing.  Returns the final path.
    """
    return save_arrays(
        {
            "addr": trace.addr,
            "kind": trace.kind,
            "segment": trace.segment,
            "thread": trace.thread,
            "instruction_count": np.int64(trace.instruction_count),
        },
        path,
        **metadata,
    )


def load_trace(path: str | Path) -> tuple[Trace, dict]:
    """Read a trace bundle; returns ``(trace, metadata)``."""
    arrays, metadata = load_arrays(path)
    try:
        trace = Trace(
            addr=arrays["addr"],
            kind=arrays["kind"],
            segment=arrays["segment"],
            thread=arrays["thread"],
            instruction_count=int(arrays["instruction_count"]),
        )
    except KeyError as exc:
        raise TraceError(f"{path} is not a trace bundle: missing {exc}") from exc
    return trace, metadata
