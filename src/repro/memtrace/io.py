"""Trace persistence.

Generating the bigger synthetic traces and search-engine traces takes real
time; persisting them as compressed ``.npz`` bundles lets experiment
campaigns and notebooks reuse collections, the way the paper reuses its Pin
trace collections across analyses ("results are qualitatively similar over
multiple such collections", §III-A).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.memtrace.trace import Trace

#: Format version written into every bundle; bump on layout changes.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path, **metadata) -> Path:
    """Write a trace (plus optional JSON-able metadata) to ``path``.

    The suffix ``.npz`` is appended when missing.  Returns the final path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    try:
        header = json.dumps(
            {"version": FORMAT_VERSION, "metadata": metadata}, sort_keys=True
        )
    except TypeError as exc:
        raise TraceError(f"metadata must be JSON-serializable: {exc}") from exc
    np.savez_compressed(
        path,
        addr=trace.addr,
        kind=trace.kind,
        segment=trace.segment,
        thread=trace.thread,
        instruction_count=np.int64(trace.instruction_count),
        header=np.frombuffer(header.encode(), np.uint8),
    )
    return path


def load_trace(path: str | Path) -> tuple[Trace, dict]:
    """Read a trace bundle; returns ``(trace, metadata)``."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace bundle at {path}")
    with np.load(path) as bundle:
        try:
            header = json.loads(bytes(bundle["header"]).decode())
            trace = Trace(
                addr=bundle["addr"],
                kind=bundle["kind"],
                segment=bundle["segment"],
                thread=bundle["thread"],
                instruction_count=int(bundle["instruction_count"]),
            )
        except KeyError as exc:
            raise TraceError(f"{path} is not a trace bundle: missing {exc}") from exc
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"{path} has format version {header.get('version')}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    return trace, header.get("metadata", {})
