"""Pareto-dominance filtering for multi-objective design spaces.

A design *dominates* another when it is at least as good on every
objective and strictly better on at least one.  The frontier is the set
of non-dominated designs; designs with identical objective vectors are
all kept (neither dominates the other).  The property suite in
``tests/dse`` pins the invariants the exploration relies on: the
frontier contains no dominated point, is invariant to candidate order,
and every excluded candidate is dominated by some frontier member.

Objectives are ``(attribute, sense)`` pairs read off the evaluated
objects; :data:`OBJECTIVES` is the exploration's default triple —
maximize QPS, minimize area, minimize energy per query.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The exploration's objective triple over :class:`EvaluatedDesign`.
OBJECTIVES = (
    ("qps", "max"),
    ("area_mib", "min"),
    ("energy_per_query", "min"),
)


def _oriented(points: Sequence, objectives) -> np.ndarray:
    """(n, k) float matrix, oriented so larger is always better."""
    if not objectives:
        raise ConfigurationError("at least one objective is required")
    columns = []
    for attribute, sense in objectives:
        if sense not in ("max", "min"):
            raise ConfigurationError(
                f"objective sense must be 'max' or 'min', got {sense!r}"
            )
        values = np.array(
            [float(getattr(point, attribute)) for point in points], dtype=float
        )
        columns.append(values if sense == "max" else -values)
    return np.column_stack(columns)


def dominates(a, b, objectives=OBJECTIVES) -> bool:
    """True when design ``a`` Pareto-dominates design ``b``."""
    matrix = _oriented([a, b], objectives)
    at_least_as_good = bool(np.all(matrix[0] >= matrix[1]))
    strictly_better = bool(np.any(matrix[0] > matrix[1]))
    return at_least_as_good and strictly_better


def pareto_frontier(points: Sequence, objectives=OBJECTIVES) -> list:
    """The non-dominated subset of ``points``.

    Output order is canonical — sorted by the oriented objective vector,
    best first — so the frontier is invariant to the candidate order
    (ties on the full vector keep their relative input order, but equal
    vectors are interchangeable by construction).
    """
    points = list(points)
    if not points:
        return []
    matrix = _oriented(points, objectives)
    keep = np.ones(len(points), dtype=bool)
    for index in range(len(points)):
        row = matrix[index]
        dominated = (matrix >= row).all(axis=1) & (matrix > row).any(axis=1)
        if dominated.any():
            keep[index] = False
    frontier = [point for index, point in enumerate(points) if keep[index]]
    order = sorted(
        range(len(frontier)),
        key=lambda i: tuple(-v for v in matrix[keep][i]),
    )
    return [frontier[i] for i in order]
