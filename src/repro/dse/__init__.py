"""Design-space exploration over declarative hardware specs.

Enumerates thousands of candidate memory hierarchies (cores-vs-L3
split, CAT way partitioning, L4 size and latency) from
:class:`~repro.dse.space.DesignSpace`, evaluates each with the paper's
calibrated models and the fused composed-run engine
(:class:`~repro.dse.explorer.DesignSpaceExplorer`), filters by iso-area
and iso-power constraints, and reports the Pareto frontier over
(QPS, area, energy-per-query) via :func:`~repro.dse.pareto.pareto_frontier`.
Figures 9, 10, 13, and 14 are single points or slices of this space;
the ``dse`` experiment re-derives their chosen designs as cross-checks.
"""

from repro.dse.explorer import (
    Constraints,
    DesignSpaceExplorer,
    EvaluatedDesign,
    ExplorationResult,
)
from repro.dse.pareto import OBJECTIVES, dominates, pareto_frontier
from repro.dse.space import DesignPoint, DesignSpace

__all__ = [
    "Constraints",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "EvaluatedDesign",
    "ExplorationResult",
    "OBJECTIVES",
    "dominates",
    "pareto_frontier",
]
