"""The design-space exploration engine (iso-area / iso-power search).

:class:`DesignSpaceExplorer` scores every :class:`DesignPoint` of a
:class:`DesignSpace` with the paper's calibrated models, all derived
from the declarative specs in :mod:`repro.hw.catalog`:

* **QPS** — Eq. 1 over the Figure 10 effective L3 hit curve, with the
  L4 term fed by simulating the composed run's L3 miss stream (the same
  path as Figures 13/14, so the smaller-L3-feeds-hotter-L4 synergy is
  captured).  To keep thousands of candidates tractable, the L4 demand
  stream is taken at the nearest :data:`L3_GRID_MIB` capacity and the
  resulting hit rates are memoized per (grid capacity, L4 size) — L4
  hit rates are latency-independent, so two latency variants share one
  simulation.
* **Area** — core-equivalent MiB of cores + L3 (the L4 sits on-package,
  off the processor die, and is excluded, as in the paper's iso-area
  framing).
* **Power / energy** — linear socket power plus the L4's standby
  watts; energy per query is watts over relative QPS.

Evaluating the paper's chosen points through this engine reproduces the
figure experiments bit-for-bit: the (23 cores, 23 MiB) candidate's QPS
improvement equals Figure 10's SMT-on quantized optimum, and the
(23, 23, 1 GiB @ 40 ns) candidate equals Figure 14's baseline-scenario
combined improvement — the differential battery in ``tests/dse`` pins
both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro._units import MiB
from repro.core.hitcurve import LogLinearHitCurve
from repro.core.l4cache import L4Cache
from repro.dse.pareto import pareto_frontier
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import ConfigurationError
from repro.hw.adapters import DerivedModels, derive_models
from repro.hw.catalog import plt1, proposed

#: L3 capacities (paper-scale MiB) at which L4 demand streams are taken.
#: The grid is the CAT half-way ladder with 22.5 MiB replaced by the
#: paper's 23 MiB design point, so the chosen design's L4 sees exactly
#: the demand stream Figures 13/14 simulate.
L3_GRID_MIB = (4.5, 9.0, 13.5, 18.0, 23.0, 27.0, 31.5, 36.0, 40.5, 45.0)


@dataclass(frozen=True)
class Constraints:
    """Feasibility bounds for the search; ``None`` disables a bound.

    Units: ``max_area_mib`` is core-equivalent MiB of cores + L3;
    ``max_socket_watts`` is watts (socket power plus L4 standby power).
    """

    max_area_mib: float | None = None
    max_socket_watts: float | None = None

    def __post_init__(self) -> None:
        """Validate that every active bound is positive."""
        if self.max_area_mib is not None and self.max_area_mib <= 0:
            raise ConfigurationError("max_area_mib must be positive")
        if self.max_socket_watts is not None and self.max_socket_watts <= 0:
            raise ConfigurationError("max_socket_watts must be positive")

    def allows(self, design: "EvaluatedDesign") -> bool:
        """Whether an evaluated design satisfies every active bound."""
        if self.max_area_mib is not None and design.area_mib > self.max_area_mib:
            return False
        if (
            self.max_socket_watts is not None
            and design.watts > self.max_socket_watts
        ):
            return False
        return True

    @classmethod
    def iso_plt1(cls, power_slack: float = 0.10) -> "Constraints":
        """The paper's framing: PLT1's area, near PLT1's published TDP.

        The area budget is the baseline 18-core / 45 MiB design in
        core-equivalent MiB (117); the power budget is the published TDP
        plus ``power_slack`` headroom — the paper's 23-core design sits
        within 3.8% of TDP, so a zero-slack budget would exclude it.
        """
        if power_slack < 0:
            raise ConfigurationError("power_slack must be >= 0")
        spec = plt1()
        models = derive_models(spec)
        return cls(
            max_area_mib=models.area.total_area_mib(
                spec.cores_per_socket, spec.l3.size_mib
            ),
            max_socket_watts=spec.published_tdp_watts * (1.0 + power_slack),
        )


@dataclass(frozen=True)
class EvaluatedDesign:
    """One scored candidate — the objective vector plus its diagnostics.

    Units: ``qps`` is relative throughput (cores x IPC, same unit as the
    figure experiments); ``area_mib`` is core-equivalent MiB;
    ``watts`` is watts; ``energy_per_query`` is watts per unit of
    relative QPS (relative joules/query); ``memory_nj_per_ki`` is
    nanojoules per kilo-instruction.
    """

    point: DesignPoint
    qps: float
    qps_improvement: float
    area_mib: float
    watts: float
    energy_per_query: float
    l3_hit_rate: float
    l4_hit_rate: float | None
    memory_nj_per_ki: float

    def render(self) -> str:
        """One-line summary for reports."""
        l4 = f"h(L4)={self.l4_hit_rate:5.1%}" if self.l4_hit_rate is not None else "no L4     "
        return (
            f"{self.point.describe():<26} QPS {self.qps_improvement:+6.1%}  "
            f"area {self.area_mib:6.1f} MiB  {self.watts:6.1f} W  "
            f"E/q {self.energy_per_query:6.3f}  {l4}"
        )


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of one exploration: all scores, the feasible set, the frontier."""

    evaluated: tuple[EvaluatedDesign, ...]
    feasible: tuple[EvaluatedDesign, ...]
    frontier: tuple[EvaluatedDesign, ...]
    constraints: Constraints

    def find(self, point: DesignPoint) -> EvaluatedDesign | None:
        """The evaluation of an exact design point, or None."""
        for design in self.evaluated:
            if design.point == point:
                return design
        return None

    def frontier_contains(self, point: DesignPoint) -> bool:
        """Whether a design point survived to the Pareto frontier."""
        return any(design.point == point for design in self.frontier)

    def best_qps(self) -> EvaluatedDesign:
        """The feasible design with the highest throughput."""
        if not self.feasible:
            raise ConfigurationError("no feasible design under the constraints")
        return max(self.feasible, key=lambda d: (d.qps, d.point.sort_key))


class DesignSpaceExplorer:
    """Scores candidate hierarchies against the PLT1 baseline design.

    Parameters
    ----------
    preset:
        Stream scale for the L4 demand simulations (quick by default).
    hit_rate_fn:
        L3 hit rate vs. paper-scale capacity in bytes; defaults to the
        Figure 10 effective curve (the figure experiments' curve).
    models:
        The calibrated model bundle; defaults to the proposed design's
        spec-derived models, whose latency/area/power parameters equal
        the hand-coded paper models (differential battery, PR 10).
    """

    def __init__(
        self,
        preset=None,
        profile: str = "s1-leaf",
        platform: str = "plt1",
        hit_rate_fn: Callable[[int], float] | None = None,
        models: DerivedModels | None = None,
    ) -> None:
        """Wire up curve, models, and the PLT1 baseline throughput."""
        from repro.experiments.common import RunPreset

        self.preset = preset or RunPreset.quick()
        self.profile = profile
        self.platform = platform
        self.hit_rate_fn = hit_rate_fn or LogLinearHitCurve.fig10_effective()
        self.models = models or derive_models(proposed())
        baseline = plt1()
        self.baseline_cores = baseline.cores_per_socket
        self.baseline_l3_mib = baseline.l3.size_mib
        self.baseline_qps = self.models.perf.qps(
            self.baseline_cores,
            self.hit_rate_fn(int(self.baseline_l3_mib * MiB)),
        )
        self._l4_hits: dict[tuple[float, int], float] = {}
        self._demands: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        self._mpki: dict[int, float] = {}

    # ------------------------------------------------------------------

    @property
    def run(self):
        """The composed hierarchy run feeding the L4 simulations."""
        from repro.experiments.common import composed_run

        return composed_run(self.profile, self.preset, platform=self.platform)

    def _scaled_bytes(self, paper_bytes: float) -> int:
        """Paper-scale bytes -> stream-scale bytes (block-size floored).

        Units: ``paper_bytes`` is bytes at paper scale.
        """
        return max(self.run.block_size, int(paper_bytes * self.preset.scale))

    @staticmethod
    def quantized_l3_mib(l3_mib: float) -> float:
        """The :data:`L3_GRID_MIB` capacity nearest to an L3 size.

        Ties break toward the smaller grid point (hotter demand stream).

        Units: ``l3_mib`` is paper-scale MiB.
        """
        return min(L3_GRID_MIB, key=lambda grid: (abs(grid - l3_mib), grid))

    def _l4_demand(self, grid_mib: float) -> tuple[np.ndarray, np.ndarray]:
        if grid_mib not in self._demands:
            self._demands[grid_mib] = self.run.l4_demand(
                self._scaled_bytes(grid_mib * MiB)
            )
        return self._demands[grid_mib]

    def l4_hit_rate(self, grid_mib: float, l4_mib: int) -> float:
        """Simulated L4 hit rate over the grid capacity's miss stream.

        Memoized per (grid capacity, L4 size): hit rates are independent
        of the candidate's L4 latencies, so all latency variants of one
        geometry share a single direct-mapped simulation.

        Units: ``grid_mib`` and ``l4_mib`` are paper-scale MiB.
        """
        key = (grid_mib, l4_mib)
        if key not in self._l4_hits:
            lines, segments = self._l4_demand(grid_mib)
            config = self.models.l4_config(self._scaled_bytes(l4_mib * MiB))
            self._l4_hits[key] = L4Cache(config).simulate(lines, segments).hit_rate
        return self._l4_hits[key]

    def _l3_mpki(self, capacity_bytes: int) -> float:
        """Memoized per-thread L3 MPKI at a stream-scale capacity.

        Many candidates share an L3 size, and the composed run's MPKI
        query re-reduces the miss curves on every call — the memo turns
        the per-point cost into a dict lookup.

        Units: ``capacity_bytes`` is stream-scale bytes.
        """
        if capacity_bytes not in self._mpki:
            self._mpki[capacity_bytes] = self.run.l3_mpki(capacity_bytes)
        return self._mpki[capacity_bytes]

    # ------------------------------------------------------------------

    def evaluate(self, point: DesignPoint) -> EvaluatedDesign:
        """Score one candidate against the 18-core / 45 MiB baseline."""
        h3 = self.hit_rate_fn(int(point.l3_mib * MiB))
        if point.has_l4:
            h4 = self.l4_hit_rate(self.quantized_l3_mib(point.l3_mib), point.l4_mib)
            latencies = replace(
                self.models.latencies,
                l4_hit_ns=point.l4_hit_ns,
                l4_miss_penalty_ns=point.l4_miss_penalty_ns,
            )
            perf = self.models.perf.with_latencies(latencies)
            qps = perf.qps(point.cores, h3, l4_hit_rate=h4)
        else:
            h4 = None
            qps = self.models.perf.qps(point.cores, h3)
        watts = self.models.power.socket_watts(point.cores)
        if point.has_l4:
            watts += self.models.l4_static_watts(float(point.l4_mib))
        mpki = self._l3_mpki(self._scaled_bytes(point.l3_mib * MiB))
        return EvaluatedDesign(
            point=point,
            qps=qps,
            qps_improvement=qps / self.baseline_qps - 1.0,
            area_mib=self.models.area.total_area_mib(point.cores, point.l3_mib),
            watts=watts,
            energy_per_query=self.models.power.energy_per_query(watts, qps),
            l3_hit_rate=h3,
            l4_hit_rate=h4,
            memory_nj_per_ki=self.models.power.memory_energy_per_ki(
                mpki, l4_hit_rate=h4
            ),
        )

    def prime(self, space: DesignSpace) -> None:
        """Batch-solve every distinct L3 capacity the space will touch.

        One fused :meth:`~repro.cachesim.composed.ComposedHierarchy.solve_l3_sweep`
        call covers the MPKI capacities and the L4 demand grid, so the
        per-point evaluations afterwards are pure memo lookups.
        """
        capacities = {self._scaled_bytes(p.l3_mib * MiB) for p in space}
        capacities.update(
            self._scaled_bytes(grid * MiB) for grid in L3_GRID_MIB
        )
        self.run.solve_l3_sweep(sorted(capacities))

    def explore(
        self,
        space: DesignSpace | None = None,
        constraints: Constraints | None = None,
    ) -> ExplorationResult:
        """Evaluate a space, filter by constraints, take the frontier."""
        space = space if space is not None else DesignSpace.paper_default()
        constraints = constraints if constraints is not None else Constraints.iso_plt1()
        self.prime(space)
        evaluated = tuple(self.evaluate(point) for point in space)
        feasible = tuple(d for d in evaluated if constraints.allows(d))
        frontier = tuple(pareto_frontier(feasible))
        return ExplorationResult(
            evaluated=evaluated,
            feasible=feasible,
            frontier=frontier,
            constraints=constraints,
        )
