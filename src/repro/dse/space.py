"""Enumeration of candidate memory-hierarchy designs.

A :class:`DesignPoint` names one candidate: a core count, a shared L3
capacity, and an optional eDRAM L4 (size plus hit/miss-penalty
latencies).  :meth:`DesignSpace.paper_default` spans the axes the paper
explores — the L3-vs-cores split of Figure 10 (both as MiB-per-core
ratios and as CAT way counts), and the L4 size/latency grid of
Figures 13–14 — yielding several thousand deduplicated candidates in a
deterministic order.  The paper's chosen designs (18c/45 MiB baseline,
23c/23 MiB rebalance, and 23c/23 MiB + 1 GiB L4) are all members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError

#: Figure 10's L3-per-core sweep, 2.25 MiB down to 0.5 MiB.
RATIOS_MIB_PER_CORE = (0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5)
#: CAT way counts on PLT1's 20-way, 45 MiB L3 (2.25 MiB per way).
CAT_WAY_COUNTS = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
CAT_WAY_MIB = 2.25
#: Figure 13/14's L4 capacity sweep.
L4_SIZES_MIB = (128, 256, 512, 1024, 2048)
#: (hit, miss-penalty) latency pairs: the proposed overlapped-lookup
#: design and the paper's pessimistic scenario.
L4_LATENCY_PAIRS_NS = ((40.0, 0.0), (60.0, 5.0))


@dataclass(frozen=True)
class DesignPoint:
    """One candidate hierarchy: cores + L3, optionally an L4.

    ``l4_mib == 0`` means no L4; the latency fields are then inert.

    Units: ``l3_mib`` and ``l4_mib`` are paper-scale MiB; ``l4_hit_ns``
    and ``l4_miss_penalty_ns`` are nanoseconds.
    """

    cores: int
    l3_mib: float
    l4_mib: int = 0
    l4_hit_ns: float = 40.0
    l4_miss_penalty_ns: float = 0.0

    def __post_init__(self) -> None:
        """Validate every field; units per the class docstring.

        Units: ``l3_mib``/``l4_mib`` are MiB; ``l4_hit_ns`` and
        ``l4_miss_penalty_ns`` are nanoseconds.
        """
        if not isinstance(self.cores, int) or isinstance(self.cores, bool):
            raise ConfigurationError(f"cores must be an int, got {self.cores!r}")
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.l3_mib <= 0:
            raise ConfigurationError(f"l3_mib must be positive, got {self.l3_mib}")
        if self.l4_mib < 0:
            raise ConfigurationError(f"l4_mib must be >= 0, got {self.l4_mib}")
        if self.l4_hit_ns <= 0:
            raise ConfigurationError("l4_hit_ns must be positive")
        if self.l4_miss_penalty_ns < 0:
            raise ConfigurationError("l4_miss_penalty_ns must be >= 0")

    @property
    def has_l4(self) -> bool:
        """Whether this design includes an L4."""
        return self.l4_mib > 0

    @property
    def sort_key(self) -> tuple:
        """Canonical ordering tuple (the enumeration order of a space)."""
        return (
            self.cores,
            self.l3_mib,
            self.l4_mib,
            self.l4_hit_ns,
            self.l4_miss_penalty_ns,
        )

    def describe(self) -> str:
        """Compact human-readable label, e.g. ``23c/23.0MiB+L4:1024MiB``."""
        label = f"{self.cores}c/{self.l3_mib:g}MiB"
        if self.has_l4:
            label += f"+L4:{self.l4_mib}MiB@{self.l4_hit_ns:g}ns"
        return label


@dataclass(frozen=True)
class DesignSpace:
    """An ordered, duplicate-free collection of candidate designs."""

    points: tuple[DesignPoint, ...]

    def __post_init__(self) -> None:
        """Reject construction with duplicate candidate points."""
        if len(set(self.points)) != len(self.points):
            raise ConfigurationError("design space contains duplicate points")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self.points)

    def __contains__(self, point: DesignPoint) -> bool:
        """Membership test over the candidate set."""
        return point in set(self.points)

    @classmethod
    def from_points(cls, points: Sequence[DesignPoint]) -> "DesignSpace":
        """Deduplicate and canonically order an arbitrary candidate list."""
        unique = sorted(set(points), key=lambda p: p.sort_key)
        return cls(points=tuple(unique))

    @classmethod
    def paper_default(
        cls,
        core_counts: Sequence[int] = tuple(range(8, 29)),
        l4_sizes_mib: Sequence[int] = L4_SIZES_MIB,
    ) -> "DesignSpace":
        """The paper-spanning space: ~4k candidates over all four axes.

        For every core count, L3 capacities come from both the
        MiB-per-core ratio sweep (Figure 10) and the CAT way grid
        (Figure 9); each geometry is tried without an L4 and with every
        (size, latency-pair) L4 variant.

        Units: ``l4_sizes_mib`` are paper-scale MiB.
        """
        points = []
        for cores in core_counts:
            l3_sizes = {cores * ratio for ratio in RATIOS_MIB_PER_CORE}
            l3_sizes.update(ways * CAT_WAY_MIB for ways in CAT_WAY_COUNTS)
            for l3_mib in l3_sizes:
                points.append(DesignPoint(cores=cores, l3_mib=l3_mib))
                for l4_mib in l4_sizes_mib:
                    for hit_ns, penalty_ns in L4_LATENCY_PAIRS_NS:
                        points.append(
                            DesignPoint(
                                cores=cores,
                                l3_mib=l3_mib,
                                l4_mib=l4_mib,
                                l4_hit_ns=hit_ns,
                                l4_miss_penalty_ns=penalty_ns,
                            )
                        )
        return cls.from_points(points)
