"""One level of a memory hierarchy, described declaratively.

A :class:`MemoryInstance` carries everything the paper's models need to
know about a cache or memory level — geometry (size, block, ways,
banks), timing (latency, bandwidth), and cost (die area, per-access
energy, static power) — validated at construction and serializable to a
plain dict for lossless JSON round trips.  Instances are inert data:
the adapters in :mod:`repro.hw.adapters` turn them into simulator and
model configurations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro._units import MiB, format_size, is_power_of_two
from repro.errors import ConfigurationError

#: Memory technologies a level may declare.
KINDS = ("sram", "edram", "dram")

#: Fields that must hold booleans (checked before the int fields:
#: ``bool`` is a subclass of ``int`` and must not satisfy them).
_BOOL_FIELDS = ("shared",)
_INT_FIELDS = ("size_bytes", "block_bytes", "assoc", "banks")
_FLOAT_FIELDS = (
    "latency_ns",
    "bandwidth_gibps",
    "area_mib",
    "energy_nj",
    "static_mw_per_mib",
)


@dataclass(frozen=True)
class MemoryInstance:
    """One declarative memory level.

    ``assoc`` follows cache convention: ``1`` is direct-mapped, ``0``
    declares the level fully associative / plainly addressable (main
    memory).  ``area_mib`` is in the paper's "equivalent L3 MiB" die
    area currency; per-core SRAM area is conventionally folded into
    ``HardwareSpec.core_area_mib`` instead.

    Units: ``size_bytes`` and ``block_bytes`` are bytes; ``latency_ns``
    is nanoseconds (load-to-use); ``bandwidth_gibps`` is GiB/s;
    ``area_mib`` is equivalent L3 MiB; ``energy_nj`` is nanojoules per
    block access; ``static_mw_per_mib`` is milliwatts of standby/refresh
    power per MiB of capacity.
    """

    name: str
    kind: str
    size_bytes: int
    latency_ns: float
    bandwidth_gibps: float
    block_bytes: int = 64
    assoc: int = 8
    shared: bool = False
    banks: int = 1
    area_mib: float = 0.0
    energy_nj: float = 0.0
    static_mw_per_mib: float = 0.0

    def __post_init__(self) -> None:
        """Validate every field, raising :class:`ConfigurationError`."""
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("name must be a non-empty string")
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )
        for field in _BOOL_FIELDS:
            if not isinstance(getattr(self, field), bool):
                raise ConfigurationError(f"{field} must be a bool")
        for field in _INT_FIELDS:
            value = getattr(self, field)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(f"{field} must be an int")
        for field in _FLOAT_FIELDS:
            value = getattr(self, field)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(f"{field} must be a number")
        if not is_power_of_two(self.block_bytes):
            raise ConfigurationError(
                f"block_bytes must be a power of two, got {self.block_bytes}"
            )
        if self.size_bytes < self.block_bytes:
            raise ConfigurationError(
                f"size_bytes ({self.size_bytes}) must be at least one block "
                f"({self.block_bytes})"
            )
        if self.size_bytes % self.block_bytes:
            raise ConfigurationError(
                "size_bytes must be a whole number of blocks"
            )
        if self.assoc < 0:
            raise ConfigurationError(f"assoc must be >= 0, got {self.assoc}")
        if self.assoc and self.size_bytes % (self.assoc * self.block_bytes):
            raise ConfigurationError(
                f"size_bytes must split into whole {self.assoc}-way sets"
            )
        if self.banks < 1:
            raise ConfigurationError(f"banks must be >= 1, got {self.banks}")
        if self.latency_ns <= 0:
            raise ConfigurationError("latency_ns must be positive")
        if self.bandwidth_gibps <= 0:
            raise ConfigurationError("bandwidth_gibps must be positive")
        for field in ("area_mib", "energy_nj", "static_mw_per_mib"):
            if getattr(self, field) < 0:
                raise ConfigurationError(f"{field} must be >= 0")

    # ------------------------------------------------------------------

    @property
    def size_mib(self) -> float:
        """Capacity in MiB."""
        return self.size_bytes / MiB

    @property
    def lines(self) -> int:
        """Number of blocks the level holds."""
        return self.size_bytes // self.block_bytes

    @property
    def sets(self) -> int:
        """Set count (1 for a fully-associative level)."""
        if self.assoc == 0:
            return 1
        return self.size_bytes // (self.assoc * self.block_bytes)

    def describe(self) -> str:
        """One-line human summary of the level."""
        ways = "fully-assoc" if self.assoc == 0 else f"{self.assoc}-way"
        return (
            f"{self.name}: {format_size(self.size_bytes)} {ways} "
            f"{self.kind}, {self.block_bytes} B blocks, "
            f"{self.latency_ns:g} ns"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; :meth:`from_dict` round-trips it losslessly."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryInstance":
        """Rebuild an instance from :meth:`to_dict` output.

        Unknown keys and missing required keys raise
        :class:`ConfigurationError`; field values are re-validated by the
        constructor.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"memory instance must be a dict, got {type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown memory-instance field(s): {unknown}"
            )
        required = {
            field.name
            for field in dataclasses.fields(cls)
            if field.default is dataclasses.MISSING
        }
        missing = sorted(required - set(data))
        if missing:
            raise ConfigurationError(
                f"missing memory-instance field(s): {missing}"
            )
        return cls(**data)
