"""Derive the experiments' model objects from a declarative spec.

Each adapter maps a :class:`~repro.hw.spec.HardwareSpec` onto one of the
hand-calibrated objects the rest of the codebase consumes.  The
differential battery in ``tests/hw``/``tests/experiments`` proves the
derived objects equal — and the experiment output byte-identical to —
the previously hand-coded constructions, which is what lets PLT1/PLT2
and the proposed design live as data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.cache import CacheGeometry
from repro.cachesim.hierarchy import CacheLevelConfig, HierarchyConfig
from repro.core.area import AreaModel
from repro.core.l4cache import L4Config
from repro.core.perf_model import MemoryLatencies, SearchPerfModel
from repro.core.power import PowerModel
from repro.errors import ConfigurationError
from repro.hw.instance import MemoryInstance
from repro.hw.spec import HardwareSpec


def _cache_level(instance: MemoryInstance) -> CacheLevelConfig:
    if instance.assoc < 1:
        raise ConfigurationError(
            f"{instance.name} must be set-associative to simulate "
            f"(assoc >= 1), got assoc={instance.assoc}"
        )
    return CacheLevelConfig(
        name=instance.name,
        geometry=CacheGeometry(
            size=instance.size_bytes,
            assoc=instance.assoc,
            block_size=instance.block_bytes,
        ),
        shared=instance.shared,
    )


def hierarchy_config(spec: HardwareSpec) -> HierarchyConfig:
    """The spec's L1/L2/L3 levels as a simulator configuration."""
    return HierarchyConfig(
        l1i=_cache_level(spec.l1i),
        l1d=_cache_level(spec.l1d),
        l2=_cache_level(spec.l2),
        l3=_cache_level(spec.l3),
    )


def platform_spec(spec: HardwareSpec) -> "object":
    """The spec as a Table II :class:`~repro.platforms.specs.PlatformSpec`.

    Imported lazily because :mod:`repro.platforms.specs` itself derives
    its ``PLT1``/``PLT2`` constants through this adapter.
    """
    from repro.platforms.specs import PlatformSpec

    if spec.l1i.assoc != spec.l1d.assoc:
        raise ConfigurationError(
            "PlatformSpec carries one L1 associativity; "
            f"got L1-I {spec.l1i.assoc}-way vs L1-D {spec.l1d.assoc}-way"
        )
    return PlatformSpec(
        name=spec.name,
        microarchitecture=spec.microarchitecture,
        sockets=spec.sockets,
        cores_per_socket=spec.cores_per_socket,
        smt_ways=spec.smt_ways,
        cache_block_bytes=spec.cache_block_bytes,
        l1i_bytes=spec.l1i.size_bytes,
        l1d_bytes=spec.l1d.size_bytes,
        l2_bytes=spec.l2.size_bytes,
        l3_bytes_per_socket=spec.l3.size_bytes,
        memory_bytes=spec.memory.size_bytes,
        small_page_bytes=spec.small_page_bytes,
        huge_page_bytes=spec.huge_page_bytes,
        issue_width=spec.issue_width,
        frequency_ghz=spec.frequency_ghz,
        l1_assoc=spec.l1i.assoc,
        l2_assoc=spec.l2.assoc,
        l3_assoc=spec.l3.assoc,
        calibration=spec.calibration,
    )


def area_model(spec: HardwareSpec) -> AreaModel:
    """The spec's die-area accounting (equivalent L3 MiB per core)."""
    return AreaModel(core_equiv_mib=spec.core_area_mib)


def power_model(spec: HardwareSpec) -> PowerModel:
    """The spec's socket/memory power model.

    The eDRAM per-access energy comes from the spec's L4 instance when
    one is declared; a spec without an L4 keeps the model's default so
    L4 what-if studies on it remain meaningful.
    """
    kwargs = dict(
        baseline_socket_watts=spec.baseline_socket_watts,
        core_fraction_of_socket=spec.core_fraction_of_socket,
        baseline_cores=spec.power_reference_cores,
        dram_access_nj=spec.memory.energy_nj,
        published_tdp_watts=spec.published_tdp_watts,
    )
    if spec.l4 is not None:
        kwargs["edram_access_nj"] = spec.l4.energy_nj
    return PowerModel(**kwargs)


def memory_latencies(spec: HardwareSpec) -> MemoryLatencies:
    """The spec's post-L2 latency parameters for the Eq. 1 model."""
    kwargs = dict(l3_hit_ns=spec.l3.latency_ns, mem_ns=spec.memory.latency_ns)
    if spec.l4 is not None:
        kwargs["l4_hit_ns"] = spec.l4.latency_ns
    return MemoryLatencies(**kwargs)


def perf_model(spec: HardwareSpec) -> SearchPerfModel:
    """Eq. 1's IPC/QPS model with the spec's latencies.

    The slope and intercept are the paper's published workload
    constants, not hardware attributes, so they stay at their defaults.
    """
    return SearchPerfModel(latencies=memory_latencies(spec))


def l4_config(spec: HardwareSpec, capacity_bytes: int | None = None) -> L4Config:
    """The spec's L4 as a simulator configuration.

    ``assoc=1`` maps to the direct-mapped design, ``assoc=0`` to the
    fully-associative sensitivity model; other associativities have no
    L4 simulator and raise.  The miss penalty is zero — the overlapped
    tag lookup of the proposed design — with the pessimistic scenario
    applied downstream via :class:`MemoryLatencies`.

    Units: ``capacity_bytes`` is bytes (defaults to the declared size).
    """
    if spec.l4 is None:
        raise ConfigurationError(f"spec {spec.name!r} declares no L4")
    if spec.l4.assoc == 1:
        associativity = "direct"
    elif spec.l4.assoc == 0:
        associativity = "full"
    else:
        raise ConfigurationError(
            f"no L4 model for a {spec.l4.assoc}-way design; "
            "declare assoc=1 (direct) or assoc=0 (fully associative)"
        )
    return L4Config(
        capacity=capacity_bytes if capacity_bytes is not None else spec.l4.size_bytes,
        block_size=spec.l4.block_bytes,
        hit_ns=spec.l4.latency_ns,
        miss_penalty_ns=0.0,
        associativity=associativity,
        technology=spec.l4.kind,
    )


def l4_static_watts(spec: HardwareSpec, l4_mib: float) -> float:
    """Standby/refresh power of an L4 of the spec's technology.

    Units: ``l4_mib`` is MiB of L4 capacity; the result is watts.
    Zero when the spec declares no L4 (or ``l4_mib`` is zero).
    """
    if l4_mib < 0:
        raise ConfigurationError(f"l4_mib must be >= 0, got {l4_mib}")
    if spec.l4 is None or l4_mib == 0:
        return 0.0
    return spec.l4.static_mw_per_mib * l4_mib / 1000.0


@dataclass(frozen=True)
class DerivedModels:
    """Every model view of one spec, derived once and carried together."""

    spec: HardwareSpec
    hierarchy: HierarchyConfig
    area: AreaModel
    power: PowerModel
    latencies: MemoryLatencies
    perf: SearchPerfModel

    def l4_config(self, capacity_bytes: int | None = None) -> L4Config:
        """The spec's L4 configuration, optionally at another capacity.

        Units: ``capacity_bytes`` is bytes.
        """
        return l4_config(self.spec, capacity_bytes)

    def l4_static_watts(self, l4_mib: float) -> float:
        """Standby/refresh watts of ``l4_mib`` MiB of the spec's L4.

        Units: ``l4_mib`` is MiB; the result is watts.
        """
        return l4_static_watts(self.spec, l4_mib)


def derive_models(spec: HardwareSpec) -> DerivedModels:
    """Derive every experiment-facing model object from one spec."""
    return DerivedModels(
        spec=spec,
        hierarchy=hierarchy_config(spec),
        area=area_model(spec),
        power=power_model(spec),
        latencies=memory_latencies(spec),
        perf=perf_model(spec),
    )
