"""The paper's platforms and proposed design, as declarative specs.

Four specs, mirroring how the experiments use them:

* :func:`plt1` — the Table II PLT1 lab machine (Haswell, 18 cores and
  45 MiB of 20-way L3 per socket).  Its power/area fields carry the
  paper's measured anchors: 4 MiB of L3-equivalent area per core,
  143 W per socket at 18 cores with 3.77% per core, 165 W published TDP.
* :func:`plt1_simulated` — the §III-A simulated configuration, identical
  but with the 40 MiB L3 the paper models; this is what the composed
  trace runs use.
* :func:`plt2` — the Table II POWER8 machine (SMT-8, 128 B blocks,
  96 MiB eDRAM L3).  Its power/area numbers are plausible placeholders,
  not paper-calibrated: the paper measured die area and socket power on
  PLT1 only.
* :func:`proposed` — the paper's §IV design: 23 cores at 1 MiB/core of
  L3 (modeled as 23 ways of 1 MiB) plus a 1 GiB direct-mapped eDRAM L4
  at 40 ns with 6 nJ per access.  The power anchors stay referenced to
  the measured 18-core point (``power_reference_cores=18``), which is
  how the paper extrapolates the +18.9% socket power of the 23-core
  design.

Latency/bandwidth/energy values not stated by the paper (L1/L2 timing,
per-level bandwidths, SRAM energies) are conventional figures included
for declarative completeness; no downstream model consumes them.
"""

from __future__ import annotations

from dataclasses import replace

from repro._units import GiB, KiB, MiB
from repro.hw.instance import MemoryInstance
from repro.hw.spec import HardwareSpec


def plt1() -> HardwareSpec:
    """The Table II PLT1 platform (Intel Haswell, 45 MiB L3)."""
    return HardwareSpec(
        name="PLT1",
        microarchitecture="Intel Haswell",
        calibration="haswell",
        sockets=2,
        cores_per_socket=18,
        smt_ways=2,
        l1i=MemoryInstance(
            name="L1I", kind="sram", size_bytes=32 * KiB,
            latency_ns=1.6, bandwidth_gibps=1000.0, energy_nj=0.05,
        ),
        l1d=MemoryInstance(
            name="L1D", kind="sram", size_bytes=32 * KiB,
            latency_ns=1.6, bandwidth_gibps=1000.0, energy_nj=0.05,
        ),
        l2=MemoryInstance(
            name="L2", kind="sram", size_bytes=256 * KiB,
            latency_ns=4.8, bandwidth_gibps=500.0, energy_nj=0.1,
        ),
        l3=MemoryInstance(
            name="L3", kind="sram", size_bytes=45 * MiB, assoc=20,
            shared=True, banks=18, latency_ns=36.0, bandwidth_gibps=300.0,
            area_mib=45.0, energy_nj=1.2,
        ),
        memory=MemoryInstance(
            name="DRAM", kind="dram", size_bytes=256 * GiB, assoc=0,
            shared=True, banks=4, latency_ns=110.0, bandwidth_gibps=76.8,
            energy_nj=20.0,
        ),
        issue_width=4,
        frequency_ghz=2.5,
        small_page_bytes=4 * KiB,
        huge_page_bytes=2 * MiB,
        core_area_mib=4.0,
        baseline_socket_watts=143.0,
        core_fraction_of_socket=0.0377,
        power_reference_cores=18,
        published_tdp_watts=165.0,
    )


def plt1_simulated() -> HardwareSpec:
    """The §III-A simulated PLT1-like system: a 40 MiB, 20-way L3."""
    base = plt1()
    return replace(
        base,
        name="PLT1-sim",
        l3=replace(base.l3, size_bytes=40 * MiB, area_mib=40.0),
    )


def plt2() -> HardwareSpec:
    """The Table II PLT2 platform (IBM POWER8, 96 MiB eDRAM L3)."""
    return HardwareSpec(
        name="PLT2",
        microarchitecture="IBM POWER8",
        calibration="power8",
        sockets=2,
        cores_per_socket=12,
        smt_ways=8,
        l1i=MemoryInstance(
            name="L1I", kind="sram", size_bytes=32 * KiB, block_bytes=128,
            latency_ns=1.2, bandwidth_gibps=1000.0, energy_nj=0.05,
        ),
        l1d=MemoryInstance(
            name="L1D", kind="sram", size_bytes=64 * KiB, block_bytes=128,
            latency_ns=1.2, bandwidth_gibps=1000.0, energy_nj=0.05,
        ),
        l2=MemoryInstance(
            name="L2", kind="sram", size_bytes=512 * KiB, block_bytes=128,
            latency_ns=3.4, bandwidth_gibps=500.0, energy_nj=0.1,
        ),
        l3=MemoryInstance(
            name="L3", kind="edram", size_bytes=96 * MiB, block_bytes=128,
            shared=True, banks=12, latency_ns=30.0, bandwidth_gibps=300.0,
            area_mib=96.0, energy_nj=1.5,
        ),
        memory=MemoryInstance(
            name="DRAM", kind="dram", size_bytes=256 * GiB, block_bytes=128,
            assoc=0, shared=True, banks=4, latency_ns=110.0,
            bandwidth_gibps=76.8, energy_nj=20.0,
        ),
        issue_width=8,
        frequency_ghz=3.5,
        small_page_bytes=64 * KiB,
        huge_page_bytes=16 * MiB,
        core_area_mib=8.0,
        baseline_socket_watts=190.0,
        core_fraction_of_socket=0.05,
        power_reference_cores=12,
        published_tdp_watts=190.0,
    )


def proposed() -> HardwareSpec:
    """The paper's §IV proposed design: rebalanced L3 + 1 GiB eDRAM L4.

    23 cores per socket at 1 MiB/core of L3 (23 ways of 1 MiB — the
    same way-granularity the CAT experiments partition by) and an
    Alloy-style direct-mapped L4 of eight 128 MiB eDRAM dies on the
    package.  The L4's ``static_mw_per_mib`` models eDRAM
    refresh/standby power, the cost axis that makes "just double the
    L4" a real trade-off in the design-space exploration.
    """
    base = plt1_simulated()
    return replace(
        base,
        name="PLT1-proposed",
        cores_per_socket=23,
        l3=replace(base.l3, size_bytes=23 * MiB, assoc=23, banks=23, area_mib=23.0),
        l4=MemoryInstance(
            name="L4", kind="edram", size_bytes=1 * GiB, assoc=1,
            shared=True, banks=8, latency_ns=40.0, bandwidth_gibps=102.4,
            energy_nj=6.0, static_mw_per_mib=6.0,
        ),
    )
