"""A whole platform, described declaratively and serializably.

:class:`HardwareSpec` assembles :class:`~repro.hw.instance.MemoryInstance`
levels (L1-I/L1-D/L2/L3, an optional L4, and main memory) with the
platform-wide facts the paper's models consume: core counts, SMT width,
page sizes, the die-area currency (``core_area_mib``), and the measured
power anchors (socket watts at a reference core count, per-core
fraction, published TDP).  Validation enforces the cross-level
invariants a real part must satisfy — monotone capacities and
latencies, a shared L3, uniform cache block size — and every violation
raises a typed :class:`~repro.errors.ConfigurationError`.

Serialization is lossless: ``spec == HardwareSpec.from_json(spec.to_json())``
holds for every valid spec (the Hypothesis suite in ``tests/hw`` pins
this), with a ``schema_version`` field guarding format drift.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro._units import KiB, MiB, is_power_of_two
from repro.errors import ConfigurationError
from repro.hw.instance import MemoryInstance

#: Serialized-format version, embedded in every dict/JSON document.
SCHEMA_VERSION = 1

#: Measured model families a spec may calibrate against (SMT curves,
#: TLB configurations).  The paper characterized two lab platforms.
CALIBRATIONS = ("haswell", "power8")

_COUNT_FIELDS = (
    "sockets",
    "cores_per_socket",
    "smt_ways",
    "issue_width",
    "power_reference_cores",
)
_LEVEL_FIELDS = ("l1i", "l1d", "l2", "l3", "memory")


@dataclass(frozen=True)
class HardwareSpec:
    """One platform: memory levels plus platform-wide model anchors.

    ``power_reference_cores`` names the active-core count at which
    ``baseline_socket_watts`` was measured (the paper scaled PLT1 from
    4 to 18 cores and found socket power linear in cores), so specs for
    *proposed* designs with more cores keep the measured anchor intact.

    Units: ``frequency_ghz`` is GHz; ``small_page_bytes`` and
    ``huge_page_bytes`` are bytes; ``core_area_mib`` is equivalent L3
    MiB of die area per core (including its private caches);
    ``baseline_socket_watts`` and ``published_tdp_watts`` are watts.
    """

    name: str
    microarchitecture: str
    calibration: str
    sockets: int
    cores_per_socket: int
    smt_ways: int
    l1i: MemoryInstance
    l1d: MemoryInstance
    l2: MemoryInstance
    l3: MemoryInstance
    memory: MemoryInstance
    l4: MemoryInstance | None = None
    issue_width: int = 4
    frequency_ghz: float = 2.5
    small_page_bytes: int = 4 * KiB
    huge_page_bytes: int = 2 * MiB
    core_area_mib: float = 4.0
    baseline_socket_watts: float = 143.0
    core_fraction_of_socket: float = 0.0377
    power_reference_cores: int = 18
    published_tdp_watts: float = 165.0

    def __post_init__(self) -> None:
        """Validate fields and cross-level invariants."""
        for field in ("name", "microarchitecture"):
            if not isinstance(getattr(self, field), str) or not getattr(self, field):
                raise ConfigurationError(f"{field} must be a non-empty string")
        if self.calibration not in CALIBRATIONS:
            raise ConfigurationError(
                f"calibration must be one of {CALIBRATIONS}, "
                f"got {self.calibration!r}"
            )
        for field in _COUNT_FIELDS:
            value = getattr(self, field)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(f"{field} must be an int")
            if value < 1:
                raise ConfigurationError(f"{field} must be >= 1, got {value}")
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency_ghz must be positive")
        if self.core_area_mib <= 0:
            raise ConfigurationError("core_area_mib must be positive")
        if self.baseline_socket_watts <= 0:
            raise ConfigurationError("baseline_socket_watts must be positive")
        if not 0 < self.core_fraction_of_socket < 1:
            raise ConfigurationError(
                "core_fraction_of_socket must be in (0, 1)"
            )
        if self.published_tdp_watts <= 0:
            raise ConfigurationError("published_tdp_watts must be positive")
        for field in ("small_page_bytes", "huge_page_bytes"):
            value = getattr(self, field)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(f"{field} must be an int")
            if not is_power_of_two(value):
                raise ConfigurationError(f"{field} must be a power of two")
        if self.huge_page_bytes <= self.small_page_bytes:
            raise ConfigurationError(
                "huge_page_bytes must exceed small_page_bytes"
            )
        self._check_levels()

    def _check_levels(self) -> None:
        for field in _LEVEL_FIELDS:
            if not isinstance(getattr(self, field), MemoryInstance):
                raise ConfigurationError(f"{field} must be a MemoryInstance")
        if self.l4 is not None and not isinstance(self.l4, MemoryInstance):
            raise ConfigurationError("l4 must be a MemoryInstance or None")
        for field in ("l1i", "l1d", "l2"):
            level = getattr(self, field)
            if level.kind != "sram":
                raise ConfigurationError(f"{field} must be SRAM, got {level.kind!r}")
            if level.shared:
                raise ConfigurationError(f"{field} must be private (shared=False)")
        if not self.l3.shared:
            raise ConfigurationError("the L3 must be shared")
        if self.l4 is not None and not self.l4.shared:
            raise ConfigurationError("the L4 must be shared")
        if self.memory.kind != "dram":
            raise ConfigurationError(
                f"main memory must be DRAM, got {self.memory.kind!r}"
            )
        blocks = {level.block_bytes for level in self.cache_levels()}
        if len(blocks) != 1:
            raise ConfigurationError(
                f"cache levels must share one block size, got {sorted(blocks)}"
            )
        for upper, lower in (("l1i", "l2"), ("l1d", "l2")):
            if getattr(self, upper).size_bytes > getattr(self, lower).size_bytes:
                raise ConfigurationError(
                    f"{upper} capacity must not exceed {lower}"
                )
        chain = ["l2", "l3"] + (["l4"] if self.l4 is not None else []) + ["memory"]
        for upper, lower in zip(chain, chain[1:]):
            if getattr(self, upper).size_bytes >= getattr(self, lower).size_bytes:
                raise ConfigurationError(
                    f"{lower} capacity must exceed {upper}"
                )
            if getattr(self, upper).latency_ns > getattr(self, lower).latency_ns:
                raise ConfigurationError(
                    f"{lower} latency must be at least {upper}'s"
                )

    # ------------------------------------------------------------------

    def cache_levels(self) -> tuple[MemoryInstance, ...]:
        """The on-chip cache levels (L1-I, L1-D, L2, L3) in lookup order."""
        return (self.l1i, self.l1d, self.l2, self.l3)

    @property
    def total_cores(self) -> int:
        """Cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def cache_block_bytes(self) -> int:
        """The uniform cache block size (validation guarantees uniformity)."""
        return self.l1i.block_bytes

    def describe(self) -> str:
        """Multi-line human summary of the platform."""
        lines = [
            f"{self.name} ({self.microarchitecture}): "
            f"{self.sockets}x{self.cores_per_socket} cores, "
            f"SMT-{self.smt_ways}, {self.frequency_ghz:g} GHz"
        ]
        levels = list(self.cache_levels())
        if self.l4 is not None:
            levels.append(self.l4)
        levels.append(self.memory)
        lines.extend(f"  {level.describe()}" for level in levels)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, with a ``schema_version`` guard field."""
        data: dict = {"schema_version": SCHEMA_VERSION}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, MemoryInstance):
                value = value.to_dict()
            data[field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareSpec":
        """Rebuild a spec from :meth:`to_dict` output, re-validating it."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"hardware spec must be a dict, got {type(data).__name__}"
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported hardware-spec schema_version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        payload = {key: value for key, value in data.items() if key != "schema_version"}
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown hardware-spec field(s): {unknown}")
        required = {
            field.name
            for field in dataclasses.fields(cls)
            if field.default is dataclasses.MISSING
        }
        missing = sorted(required - set(payload))
        if missing:
            raise ConfigurationError(f"missing hardware-spec field(s): {missing}")
        for field in _LEVEL_FIELDS:
            payload[field] = MemoryInstance.from_dict(payload[field])
        if payload.get("l4") is not None:
            payload["l4"] = MemoryInstance.from_dict(payload["l4"])
        return cls(**payload)

    def to_json(self) -> str:
        """Deterministic JSON form (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "HardwareSpec":
        """Parse :meth:`to_json` output back into a validated spec."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid hardware-spec JSON: {exc}") from exc
        return cls.from_dict(data)
