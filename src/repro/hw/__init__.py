"""Declarative hardware descriptions (§IV's design space, as data).

The paper's platforms and its proposed design live here as validated,
serializable :class:`~repro.hw.spec.HardwareSpec` objects built from
:class:`~repro.hw.instance.MemoryInstance` levels — size, banks,
bandwidth, latency, area, and per-access energy, in the style of
ZigZag's ``MemoryInstance``/``MemoryHierarchy`` model.  The adapters in
:mod:`repro.hw.adapters` derive every hand-calibrated model object the
experiments consume (``HierarchyConfig``, ``PlatformSpec``,
``AreaModel``, ``PowerModel``, ``MemoryLatencies``, ``L4Config``) from
a spec, so PLT1/PLT2 and the proposed system are data, not code; the
catalog in :mod:`repro.hw.catalog` holds the paper's instances.
"""

from repro.hw.adapters import DerivedModels, derive_models
from repro.hw.instance import MemoryInstance
from repro.hw.spec import SCHEMA_VERSION, HardwareSpec

__all__ = [
    "DerivedModels",
    "HardwareSpec",
    "MemoryInstance",
    "SCHEMA_VERSION",
    "derive_models",
]
